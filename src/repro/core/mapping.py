"""The polynomial mapping of Theorem 5: list ODs -> canonical ODs.

``X ↦ Y`` holds iff

* ``∀j,  X: [] ↦ Y_j``                                    (Theorem 3), and
* ``∀i,j, {X_1..X_{i-1}, Y_1..Y_{j-1}}: X_i ~ Y_j``        (Theorem 4).

The mapping has size ``|X| * |Y|`` — quadratic, hence "polynomial" in
the paper's phrasing.  Example 5 of the paper is reproduced verbatim in
the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
    OrderSpec,
    as_spec,
)


@dataclass(frozen=True)
class CanonicalImage:
    """The set-based image of one list OD under Theorem 5."""

    fds: Tuple[CanonicalFD, ...] = field(default_factory=tuple)
    ocds: Tuple[CanonicalOCD, ...] = field(default_factory=tuple)

    @property
    def all_ods(self) -> Tuple:
        return self.fds + self.ocds

    def __len__(self) -> int:
        return len(self.fds) + len(self.ocds)

    def __str__(self) -> str:
        return "; ".join(str(od) for od in self.all_ods)


def map_fd_part(lhs: Union[OrderSpec, Sequence[str]],
                rhs: Union[OrderSpec, Sequence[str]],
                *, drop_trivial: bool = True) -> List[CanonicalFD]:
    """Theorem 3: the constancy half — ``X ↦ XY`` iff ``∀j, X: [] ↦ Y_j``."""
    lhs, rhs = as_spec(lhs), as_spec(rhs)
    context = lhs.as_set
    fds = [CanonicalFD(context, attr) for attr in rhs]
    if drop_trivial:
        fds = [fd for fd in fds if not fd.is_trivial]
    return _dedupe(fds)


def map_compatibility_part(lhs: Union[OrderSpec, Sequence[str]],
                           rhs: Union[OrderSpec, Sequence[str]],
                           *, drop_trivial: bool = True
                           ) -> List[CanonicalOCD]:
    """Theorem 4: ``X ~ Y`` iff
    ``∀i,j, {X_1..X_{i-1}, Y_1..Y_{j-1}}: X_i ~ Y_j``."""
    lhs, rhs = as_spec(lhs), as_spec(rhs)
    ocds = []
    for i, x_attr in enumerate(lhs):
        for j, y_attr in enumerate(rhs):
            context = frozenset(lhs.attrs[:i]) | frozenset(rhs.attrs[:j])
            ocd = CanonicalOCD(context, x_attr, y_attr)
            if drop_trivial and ocd.is_trivial:
                continue
            ocds.append(ocd)
    return _dedupe(ocds)


def map_list_od(od: ListOD, *, drop_trivial: bool = True) -> CanonicalImage:
    """Theorem 5: the full canonical image of ``X ↦ Y``.

    >>> image = map_list_od(ListOD(["A", "B"], ["C", "D"]))
    >>> print(image)
    {A,B}: [] -> C; {A,B}: [] -> D; {}: A ~ C; {A}: B ~ C; {C}: A ~ D; {A,C}: B ~ D
    """
    fds = map_fd_part(od.lhs, od.rhs, drop_trivial=drop_trivial)
    ocds = map_compatibility_part(od.lhs, od.rhs, drop_trivial=drop_trivial)
    return CanonicalImage(tuple(fds), tuple(ocds))


def map_order_compatibility(compat: OrderCompatibility,
                            *, drop_trivial: bool = True) -> CanonicalImage:
    """The canonical image of a standalone ``X ~ Y`` statement."""
    ocds = map_compatibility_part(compat.lhs, compat.rhs,
                                  drop_trivial=drop_trivial)
    return CanonicalImage((), tuple(ocds))


def _dedupe(items: list) -> list:
    seen = set()
    kept = []
    for item in items:
        if item not in seen:
            seen.add(item)
            kept.append(item)
    return kept
