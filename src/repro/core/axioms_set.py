"""The set-based axiomatization for canonical ODs (Figure 2).

Each axiom is an executable inference rule: it takes premise
dependencies, checks they have the required shape, and returns the
conclusion.  The property-based tests establish *soundness* on data —
whenever the premises hold on a random instance, so does the returned
conclusion — mirroring Theorem 6.

The module also provides :class:`InferenceEngine`, a closure-style
implication checker over a cover of canonical ODs.  Its FD fragment
(Reflexivity + Strengthen + Augmentation-I) is the classical Armstrong
closure, hence complete.  Its OCD fragment applies Augmentation-II,
Propagate, and bounded Chain saturation; this is complete for covers
produced by discovery on an instance (every valid OCD then has a
minimal-context generator in the cover) though not for arbitrary
abstract covers — general OD inference is co-NP-complete [25].
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple, Union

from repro.core.od import CanonicalFD, CanonicalOCD
from repro.errors import DependencyError

CanonicalOD = Union[CanonicalFD, CanonicalOCD]


# ----------------------------------------------------------------------
# the eight axioms of Figure 2
# ----------------------------------------------------------------------
def reflexivity(context: Iterable[str]) -> List[CanonicalFD]:
    """Axiom 1: ``X: [] ↦ A`` for every ``A ∈ X`` (all trivial)."""
    context = frozenset(context)
    return [CanonicalFD(context, attribute) for attribute in sorted(context)]


def identity(context: Iterable[str], attribute: str) -> CanonicalOCD:
    """Axiom 2: ``X: A ~ A``."""
    return CanonicalOCD(frozenset(context), attribute, attribute)


def commutativity(ocd: CanonicalOCD) -> CanonicalOCD:
    """Axiom 3: ``X: A ~ B`` gives ``X: B ~ A``.

    Our representation stores the pair unordered, so this returns an
    equal object — the axiom is baked into the data type.
    """
    return CanonicalOCD(ocd.context, ocd.right, ocd.left)


def strengthen(first: CanonicalFD, second: CanonicalFD) -> CanonicalFD:
    """Axiom 4: from ``X: [] ↦ A`` and ``XA: [] ↦ B`` infer
    ``X: [] ↦ B``."""
    expected = first.context | {first.attribute}
    if second.context != expected:
        raise DependencyError(
            f"Strengthen needs contexts X and XA; got {first} and {second}")
    return CanonicalFD(first.context, second.attribute)


def propagate(fd: CanonicalFD, other_attribute: str) -> CanonicalOCD:
    """Axiom 5: from ``X: [] ↦ A`` infer ``X: A ~ B`` for any ``B``."""
    return CanonicalOCD(fd.context, fd.attribute, other_attribute)


def augmentation_fd(fd: CanonicalFD,
                    extra_context: Iterable[str]) -> CanonicalFD:
    """Axiom 6 (Augmentation-I): from ``X: [] ↦ A`` infer
    ``ZX: [] ↦ A``."""
    return CanonicalFD(fd.context | frozenset(extra_context), fd.attribute)


def augmentation_ocd(ocd: CanonicalOCD,
                     extra_context: Iterable[str]) -> CanonicalOCD:
    """Axiom 7 (Augmentation-II): from ``X: A ~ B`` infer
    ``ZX: A ~ B``."""
    return CanonicalOCD(ocd.context | frozenset(extra_context),
                        ocd.left, ocd.right)


def chain(first: CanonicalOCD, middle: Sequence[CanonicalOCD],
          last: CanonicalOCD,
          bridges: Sequence[CanonicalOCD]) -> CanonicalOCD:
    """Axiom 8 (Chain).

    Premises, for a chain ``A ~ B_1 ~ ... ~ B_n ~ C`` in context ``X``:

    * ``first``  = ``X: A ~ B_1``
    * ``middle`` = ``X: B_i ~ B_{i+1}`` for ``i`` in ``1..n-1``
    * ``last``   = ``X: B_n ~ C``
    * ``bridges``= ``XB_i: A ~ C`` for every ``i`` in ``1..n``

    Conclusion: ``X: A ~ C``.
    """
    context = first.context
    links = [first, *middle, last]
    for ocd in links:
        if ocd.context != context:
            raise DependencyError(
                f"Chain premises must share context {sorted(context)}; "
                f"got {ocd}")
    # Recover the chain orientation A ~ B1 ~ ... ~ Bn ~ C.
    sequence = _orient_chain(links)
    endpoint_a, endpoint_c = sequence[0], sequence[-1]
    betweens = sequence[1:-1]
    expected_bridges = {
        (context | {b}, frozenset((endpoint_a, endpoint_c)))
        for b in betweens
    }
    actual_bridges = {(ocd.context, ocd.pair) for ocd in bridges}
    if expected_bridges - actual_bridges:
        missing = expected_bridges - actual_bridges
        raise DependencyError(
            f"Chain is missing bridge premises: {sorted(map(str, missing))}")
    return CanonicalOCD(context, endpoint_a, endpoint_c)


def _orient_chain(links: Sequence[CanonicalOCD]) -> List[str]:
    """Order the pairwise links into a path A, B1, ..., Bn, C."""
    if len(links) == 1:
        pair = sorted(links[0].pair)
        if len(pair) == 1:  # A ~ A chain
            return [pair[0], pair[0]]
        return pair
    path = list(links[0].pair)
    if len(path) == 1:
        path = path * 2
    # Greedily thread subsequent links; each must share exactly the tail.
    for ocd in links[1:]:
        pair = set(ocd.pair)
        if path[-1] in pair:
            other = (pair - {path[-1]}).pop() if len(pair) == 2 else path[-1]
            path.append(other)
        elif path[0] in pair:
            other = (pair - {path[0]}).pop() if len(pair) == 2 else path[0]
            path.insert(0, other)
        else:
            raise DependencyError(
                "Chain premises do not form a connected path")
    return path


# ----------------------------------------------------------------------
# derived rules (Lemmas 2-4)
# ----------------------------------------------------------------------
def transitivity_fd(context: FrozenSet[str],
                    via: FrozenSet[str],
                    targets: Iterable[str]) -> List[CanonicalFD]:
    """Lemma 2: from ``∀j, X: [] ↦ Y_j`` and ``∀k, Y: [] ↦ Z_k`` infer
    ``∀k, X: [] ↦ Z_k``.  (Shape-level constructor; soundness is
    exercised on data in the tests.)"""
    return [CanonicalFD(frozenset(context), target)
            for target in sorted(set(targets) - set(context))]


def normalization(context: Iterable[str]) -> List[CanonicalOCD]:
    """Lemma 4: ``X: A ~ B`` is trivial for every ``A ∈ X``."""
    context = frozenset(context)
    out = []
    for attribute in sorted(context):
        for other in sorted(context):
            out.append(CanonicalOCD(context, attribute, other))
    return out


# ----------------------------------------------------------------------
# implication over covers
# ----------------------------------------------------------------------
class InferenceEngine:
    """Implication checking against a cover of canonical ODs.

    >>> engine = InferenceEngine([CanonicalFD({"a"}, "b")])
    >>> engine.implies(CanonicalFD({"a", "c"}, "b"))      # Augmentation-I
    True
    >>> engine.implies(CanonicalOCD({"a"}, "b", "z"))     # Propagate
    True
    """

    def __init__(self, cover: Iterable[CanonicalOD]):
        self._fds: List[CanonicalFD] = []
        self._ocds: List[CanonicalOCD] = []
        for od in cover:
            if isinstance(od, CanonicalFD):
                self._fds.append(od)
            elif isinstance(od, CanonicalOCD):
                self._ocds.append(od)
            else:
                raise DependencyError(f"not a canonical OD: {od!r}")

    @property
    def fds(self) -> Tuple[CanonicalFD, ...]:
        return tuple(self._fds)

    @property
    def ocds(self) -> Tuple[CanonicalOCD, ...]:
        return tuple(self._ocds)

    # -- FD fragment: Armstrong closure --------------------------------
    def attribute_closure(self, attributes: Iterable[str]) -> Set[str]:
        """All ``A`` with ``X: [] ↦ A`` derivable (Reflexivity +
        Strengthen + Augmentation-I = Armstrong's axioms via
        Theorem 2)."""
        closure = set(attributes)
        changed = True
        while changed:
            changed = False
            for fd in self._fds:
                if fd.attribute not in closure \
                        and fd.context <= closure:
                    closure.add(fd.attribute)
                    changed = True
        return closure

    def implies_fd(self, fd: CanonicalFD) -> bool:
        if fd.is_trivial:
            return True
        return fd.attribute in self.attribute_closure(fd.context)

    # -- OCD fragment ---------------------------------------------------
    def implies_ocd(self, ocd: CanonicalOCD, *,
                    use_chain: bool = True) -> bool:
        if ocd.is_trivial:
            return True
        closure = self.attribute_closure(ocd.context)
        # Propagate (+ Strengthen underneath the closure)
        if ocd.left in closure or ocd.right in closure:
            return True
        # Augmentation-II from any cover OCD with a smaller context,
        # where context attributes may also be *derived* constants
        # (Lemma 6 read backwards: constants can be dropped from /
        # added to contexts freely).
        for known in self._ocds:
            if known.pair == ocd.pair and known.context <= closure:
                return True
        if use_chain:
            return self._implies_via_chain(ocd, closure)
        return False

    def _implies_via_chain(self, ocd: CanonicalOCD,
                           closure: Set[str]) -> bool:
        """One round of Chain saturation: find B with X: A ~ B and
        X: B ~ C known (directly or via Propagate) and the bridge
        XB: A ~ C known."""
        in_context = [known for known in self._ocds
                      if known.context <= closure]
        neighbours = {}
        for known in in_context:
            left, right = sorted(known.pair)
            neighbours.setdefault(left, set()).add(right)
            neighbours.setdefault(right, set()).add(left)
        a, c = ocd.left, ocd.right
        for b in neighbours.get(a, set()) & neighbours.get(c, set()):
            bridge = CanonicalOCD(ocd.context | {b}, a, c)
            if self.implies_ocd(bridge, use_chain=False):
                return True
        return False

    def implies(self, od: CanonicalOD) -> bool:
        """Does the cover imply ``od``?"""
        if isinstance(od, CanonicalFD):
            return self.implies_fd(od)
        return self.implies_ocd(od)


def is_minimal_in(od: CanonicalOD, valid_fds: Set[CanonicalFD],
                  valid_ocds: Set[CanonicalOCD]) -> bool:
    """Definition-level minimality of ``od`` against the full valid
    sets (used by tests; FASTOD computes this incrementally)."""
    if isinstance(od, CanonicalFD):
        if od.is_trivial:
            return False
        return not any(
            other.attribute == od.attribute and other.context < od.context
            for other in valid_fds)
    if od.is_trivial:
        return False
    if CanonicalFD(od.context, od.left) in valid_fds:
        return False
    if CanonicalFD(od.context, od.right) in valid_fds:
        return False
    return not any(
        other.pair == od.pair and other.context < od.context
        for other in valid_ocds)
