"""Textual syntax for dependencies.

Grammar (whitespace-insensitive)::

    list OD            [A,B] -> [C,D]
    order equivalence  [A,B] <-> [C]          (parsed as two list ODs)
    order compat.      [A] ~ [B,C]
    canonical FD       {A,B}: [] -> C
    canonical OCD      {A}: B ~ C

``|->`` is accepted as a synonym of ``->`` (the paper's ``↦``), and
unicode ``↦``/``↔`` are accepted too.  The printers on the dependency
classes produce exactly this syntax, so ``parse(str(dep)) == dep``.
"""

from __future__ import annotations

import re
from typing import List, Tuple, Union

from repro.core.od import (
    CanonicalFD,
    CanonicalOCD,
    ListOD,
    OrderCompatibility,
)
from repro.errors import ParseError

Dependency = Union[ListOD, OrderCompatibility, CanonicalFD, CanonicalOCD]

_ARROW = re.compile(r"\|?->|↦")
_EQUIV = re.compile(r"<->|↔")


def _strip(text: str) -> str:
    return "".join(text.split())


def _parse_name_list(text: str, opener: str, closer: str,
                     original: str) -> List[str]:
    if not (text.startswith(opener) and text.endswith(closer)):
        raise ParseError(
            f"expected {opener}...{closer} in {original!r}, got {text!r}")
    body = text[1:-1]
    if not body:
        return []
    names = body.split(",")
    if any(not name for name in names):
        raise ParseError(f"empty attribute name in {original!r}")
    return names


def parse_order_spec(text: str) -> List[str]:
    """Parse ``[A,B,C]`` into a list of names; ``[]`` is the empty spec."""
    return _parse_name_list(_strip(text), "[", "]", text)


def parse_context(text: str) -> List[str]:
    """Parse ``{A,B}`` into a list of names; ``{}`` is the empty context."""
    return _parse_name_list(_strip(text), "{", "}", text)


def _split_once(text: str, pattern: re.Pattern,
                original: str) -> Tuple[str, str]:
    parts = pattern.split(text, maxsplit=1)
    if len(parts) != 2:
        raise ParseError(f"could not split {original!r}")
    return parts[0], parts[1]


def parse(text: str) -> Dependency:
    """Parse any dependency; the shape decides which class comes back.

    >>> parse("{A}: [] -> B")
    CanonicalFD(['A'], 'B')
    >>> parse("[A] ~ [B]")
    OrderCompatibility(['A'], ['B'])
    """
    compact = _strip(text)
    if not compact:
        raise ParseError("empty dependency string")
    if compact.startswith("{"):
        return _parse_canonical(compact, text)
    if compact.startswith("["):
        return _parse_list_form(compact, text)
    raise ParseError(
        f"a dependency starts with '{{' (canonical) or '[' (list): {text!r}")


def _parse_canonical(compact: str, original: str) -> Dependency:
    closer = compact.find("}")
    if closer < 0 or len(compact) <= closer + 1 \
            or compact[closer + 1] != ":":
        raise ParseError(f"expected '{{context}}:' prefix in {original!r}")
    context = parse_context(compact[:closer + 1])
    body = compact[closer + 2:]
    if _ARROW.search(body):
        lhs, rhs = _split_once(body, _ARROW, original)
        if _strip(lhs) != "[]":
            raise ParseError(
                f"canonical FDs read '{{X}}: [] -> A', got {original!r}")
        if not rhs or "," in rhs:
            raise ParseError(
                f"canonical FD right side must be one attribute: {original!r}")
        return CanonicalFD(context, rhs)
    if "~" in body:
        left, right = _split_once(body, re.compile(r"~"), original)
        if not left or not right:
            raise ParseError(f"malformed canonical OCD: {original!r}")
        return CanonicalOCD(context, left, right)
    raise ParseError(f"expected '->' or '~' in {original!r}")


def _parse_list_form(compact: str, original: str) -> Dependency:
    if _EQUIV.search(compact):
        raise ParseError(
            "order equivalence 'X <-> Y' is two ODs; use "
            "parse_equivalence() to obtain both directions")
    if _ARROW.search(compact):
        lhs, rhs = _split_once(compact, _ARROW, original)
        return ListOD(parse_order_spec(lhs), parse_order_spec(rhs))
    if "~" in compact:
        lhs, rhs = _split_once(compact, re.compile(r"~"), original)
        return OrderCompatibility(parse_order_spec(lhs),
                                  parse_order_spec(rhs))
    raise ParseError(f"expected '->', '<->' or '~' in {original!r}")


def parse_equivalence(text: str) -> Tuple[ListOD, ListOD]:
    """Parse ``[X] <-> [Y]`` into the OD pair (X ↦ Y, Y ↦ X)."""
    compact = _strip(text)
    if not _EQUIV.search(compact):
        raise ParseError(f"expected '<->' in {text!r}")
    lhs, rhs = _split_once(compact, _EQUIV, text)
    forward = ListOD(parse_order_spec(lhs), parse_order_spec(rhs))
    return forward, forward.reversed()
