"""Lattice nodes and candidate sets ``C_c+`` / ``C_s+``.

A :class:`LatticeNode` bundles, for one attribute set ``X``:

* its stripped partition Π*_X,
* the constancy candidate set ``C_c+(X)`` (Definition 7), stored as an
  attribute bitmask, and
* the order compatibility candidate set ``C_s+(X)`` (Definition 8),
  stored as a set of index pairs ``(a, b)`` with ``a < b`` — only one
  orientation is kept, justified by Commutativity.

The candidate-set recurrences of Algorithm 3 (lines 2, 4 and 6) live
here as free functions so both FASTOD and the tests can call them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.partitions.partition import StrippedPartition
from repro.relation.schema import bit_count, iter_bits

Pair = Tuple[int, int]


class LatticeNode:
    """State FASTOD keeps per attribute set while sweeping one level."""

    __slots__ = ("mask", "partition", "cc", "cs")

    def __init__(self, mask: int, partition: StrippedPartition,
                 cc: int = 0, cs: Set[Pair] = None):
        self.mask = mask
        self.partition = partition
        self.cc = cc
        self.cs: Set[Pair] = set() if cs is None else cs

    @property
    def level(self) -> int:
        return bit_count(self.mask)

    def __repr__(self) -> str:
        return (f"LatticeNode(mask={self.mask:b}, cc={self.cc:b}, "
                f"cs={sorted(self.cs)!r})")


def ordered_pair(a: int, b: int) -> Pair:
    """The canonical (sorted) orientation of an attribute index pair."""
    return (a, b) if a < b else (b, a)


def compute_cc(mask: int, previous: Dict[int, "LatticeNode"]) -> int:
    """Algorithm 3 line 2: ``C_c+(X) = ⋂_{A∈X} C_c+(X \\ A)``."""
    cc = -1  # all-ones; the intersection only narrows it
    for attribute in iter_bits(mask):
        cc &= previous[mask ^ (1 << attribute)].cc
        if not cc:
            break
    return cc if cc != -1 else 0


def initial_cs_level2(mask: int) -> Set[Pair]:
    """Algorithm 3 line 4: at level 2, ``C_s+({A,B}) = {{A,B}}``."""
    first, second = tuple(iter_bits(mask))
    return {ordered_pair(first, second)}


def compute_cs(mask: int, previous: Dict[int, "LatticeNode"]) -> Set[Pair]:
    """Algorithm 3 line 6 for levels > 2.

    ``{A,B}`` survives iff it belongs to ``C_s+(X \\ D)`` for *every*
    ``D ∈ X \\ {A,B}``.  Each such pair appears in exactly
    ``|X| - 2`` of the parents, so a membership count suffices.
    """
    level = bit_count(mask)
    required = level - 2
    counts: Dict[Pair, int] = {}
    for attribute in iter_bits(mask):
        parent = previous[mask ^ (1 << attribute)]
        for pair in parent.cs:
            counts[pair] = counts.get(pair, 0) + 1
    return {pair for pair, count in counts.items() if count == required}


def fill_candidate_sets(level: int, current: Dict[int, "LatticeNode"],
                        previous: Dict[int, "LatticeNode"],
                        full_mask: int, minimality_pruning: bool) -> None:
    """Populate ``cc``/``cs`` for every node of one level (Algorithm 3,
    lines 1-8) — shared by FASTOD and the incremental engine so the
    two traversals cannot drift apart.

    With minimality pruning off, every attribute and every pair stays
    a candidate (the paper's *FASTOD-No Pruning* ablation).
    """
    for mask, node in current.items():
        if not minimality_pruning:
            node.cc = full_mask
            node.cs = all_pairs(mask) if level >= 2 else set()
            continue
        node.cc = compute_cc(mask, previous)
        if level == 2:
            node.cs = initial_cs_level2(mask)
        elif level > 2:
            node.cs = compute_cs(mask, previous)


def prune_empty_nodes(current: Dict[int, "LatticeNode"]) -> int:
    """Algorithm 4: delete nodes whose candidate sets are both empty,
    returning how many were dropped (callers gate on config)."""
    doomed = [mask for mask, node in current.items()
              if not node.cc and not node.cs]
    for mask in doomed:
        del current[mask]
    return len(doomed)


def all_pairs(mask: int) -> Set[Pair]:
    """Every unordered attribute pair inside ``mask`` — the candidate
    set used when minimality pruning is disabled (the paper's
    *FASTOD-No Pruning* ablation)."""
    attributes = list(iter_bits(mask))
    return {
        (attributes[i], attributes[j])
        for i in range(len(attributes))
        for j in range(i + 1, len(attributes))
    }


def context_names(mask: int, names: Tuple[str, ...]) -> FrozenSet[str]:
    """Decode a context bitmask to attribute names."""
    return frozenset(names[i] for i in iter_bits(mask))


def mask_from_attributes(attributes: Iterable[int]) -> int:
    mask = 0
    for attribute in attributes:
        mask |= 1 << attribute
    return mask
