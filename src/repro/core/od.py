"""Dependency types: order specifications, list ODs, canonical ODs.

Two families of objects mirror the paper's two representations:

* **List-based** (Section 2): an :class:`OrderSpec` is a list of
  attributes defining a lexicographic order; a :class:`ListOD` is
  ``X ↦ Y``; an :class:`OrderCompatibility` is ``X ~ Y``.
* **Set-based canonical** (Section 3, Definition 6): a
  :class:`CanonicalFD` is ``X: [] ↦ A`` (constancy within every
  equivalence class of the context ``X``); a :class:`CanonicalOCD` is
  ``X: A ~ B`` (no swaps within every equivalence class of ``X``).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Tuple, Union

from repro.errors import DependencyError


def _validate_names(names: Iterable[str], what: str) -> Tuple[str, ...]:
    names = tuple(names)
    for name in names:
        if not isinstance(name, str) or not name:
            raise DependencyError(
                f"{what} must contain non-empty attribute names, "
                f"got {name!r}")
    return names


def format_context(context: FrozenSet[str]) -> str:
    """Render a context set as ``{A,B}`` with sorted attribute names."""
    return "{" + ",".join(sorted(context)) + "}"


class OrderSpec:
    """A list of attributes defining a lexicographic order (paper: X).

    Duplicates are allowed — the *Normalization* axiom makes them
    redundant, and :meth:`normalized` removes them.

    >>> str(OrderSpec(["year", "salary"]))
    '[year,salary]'
    """

    __slots__ = ("attrs",)

    def __init__(self, attrs: Iterable[str] = ()):
        self.attrs: Tuple[str, ...] = _validate_names(attrs, "an order spec")

    @property
    def as_set(self) -> FrozenSet[str]:
        """The set of attributes mentioned (paper: the cast to sets)."""
        return frozenset(self.attrs)

    @property
    def is_empty(self) -> bool:
        return not self.attrs

    def concat(self, other: "OrderSpec") -> "OrderSpec":
        """``XY``, the concatenation of two specs."""
        return OrderSpec(self.attrs + other.attrs)

    def prefix(self, length: int) -> "OrderSpec":
        """The first ``length`` attributes."""
        return OrderSpec(self.attrs[:length])

    def normalized(self) -> "OrderSpec":
        """Drop attributes that already occurred earlier in the list.

        Sound by the *Normalization* axiom: ``WXYXV ↔ WXYV``.
        """
        seen = set()
        kept = []
        for name in self.attrs:
            if name not in seen:
                seen.add(name)
                kept.append(name)
        return OrderSpec(kept)

    def __iter__(self):
        return iter(self.attrs)

    def __len__(self) -> int:
        return len(self.attrs)

    def __getitem__(self, index):
        return self.attrs[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderSpec):
            return self.attrs == other.attrs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("OrderSpec", self.attrs))

    def __repr__(self) -> str:
        return f"OrderSpec({list(self.attrs)!r})"

    def __str__(self) -> str:
        return "[" + ",".join(self.attrs) + "]"


def as_spec(spec: Union[OrderSpec, Sequence[str]]) -> OrderSpec:
    """Coerce a list of names (or an OrderSpec) into an OrderSpec."""
    if isinstance(spec, OrderSpec):
        return spec
    return OrderSpec(spec)


class ListOD:
    """A list-based order dependency ``X ↦ Y`` (Definition 2).

    >>> str(ListOD(["salary"], ["tax", "perc"]))
    '[salary] -> [tax,perc]'
    """

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Union[OrderSpec, Sequence[str]],
                 rhs: Union[OrderSpec, Sequence[str]]):
        self.lhs = as_spec(lhs)
        self.rhs = as_spec(rhs)

    def reversed(self) -> "ListOD":
        """``Y ↦ X`` — together with self, order equivalence ``X ↔ Y``."""
        return ListOD(self.rhs, self.lhs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ListOD):
            return self.lhs == other.lhs and self.rhs == other.rhs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ListOD", self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"ListOD({list(self.lhs.attrs)!r}, {list(self.rhs.attrs)!r})"

    def __str__(self) -> str:
        return f"{self.lhs} -> {self.rhs}"


class OrderCompatibility:
    """Order compatibility ``X ~ Y``, i.e. ``XY ↔ YX`` (Definition 3)."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Union[OrderSpec, Sequence[str]],
                 rhs: Union[OrderSpec, Sequence[str]]):
        self.lhs = as_spec(lhs)
        self.rhs = as_spec(rhs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderCompatibility):
            return self.lhs == other.lhs and self.rhs == other.rhs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("OrderCompatibility", self.lhs, self.rhs))

    def __repr__(self) -> str:
        return (f"OrderCompatibility({list(self.lhs.attrs)!r}, "
                f"{list(self.rhs.attrs)!r})")

    def __str__(self) -> str:
        return f"{self.lhs} ~ {self.rhs}"


class CanonicalFD:
    """Canonical constancy OD ``X: [] ↦ A`` (Definition 6).

    Within every equivalence class of the context ``X``, attribute ``A``
    is constant.  By Theorem 2 this is exactly the FD ``X → A``.
    """

    __slots__ = ("context", "attribute")

    def __init__(self, context: Iterable[str], attribute: str):
        self.context: FrozenSet[str] = frozenset(
            _validate_names(context, "a context"))
        (self.attribute,) = _validate_names([attribute], "an attribute")

    @property
    def is_trivial(self) -> bool:
        """Trivial by set-based Reflexivity when ``A ∈ X``."""
        return self.attribute in self.context

    @property
    def is_constant(self) -> bool:
        """True when the context is empty: ``{}: [] ↦ A`` says the whole
        column is a single value."""
        return not self.context

    def sort_key(self) -> Tuple:
        return (len(self.context), sorted(self.context), self.attribute)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CanonicalFD):
            return (self.context == other.context
                    and self.attribute == other.attribute)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("CanonicalFD", self.context, self.attribute))

    def __repr__(self) -> str:
        return (f"CanonicalFD({sorted(self.context)!r}, "
                f"{self.attribute!r})")

    def __str__(self) -> str:
        return f"{format_context(self.context)}: [] -> {self.attribute}"


class CanonicalOCD:
    """Canonical order compatibility ``X: A ~ B`` (Definition 6).

    Within every equivalence class of the context ``X`` there is no swap
    between ``A`` and ``B``.  The pair is unordered (Commutativity); it
    is stored sorted so ``X: A ~ B`` and ``X: B ~ A`` compare equal.
    """

    __slots__ = ("context", "left", "right")

    def __init__(self, context: Iterable[str], left: str, right: str):
        self.context: FrozenSet[str] = frozenset(
            _validate_names(context, "a context"))
        left, right = _validate_names([left, right], "an attribute pair")
        if left > right:
            left, right = right, left
        self.left = left
        self.right = right

    @property
    def pair(self) -> FrozenSet[str]:
        return frozenset((self.left, self.right))

    @property
    def is_trivial(self) -> bool:
        """Trivial by Identity (A = B) or Normalization (A or B in X)."""
        return (self.left == self.right
                or self.left in self.context
                or self.right in self.context)

    def sort_key(self) -> Tuple:
        return (len(self.context), sorted(self.context),
                self.left, self.right)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CanonicalOCD):
            return (self.context == other.context
                    and self.left == other.left
                    and self.right == other.right)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("CanonicalOCD", self.context, self.left, self.right))

    def __repr__(self) -> str:
        return (f"CanonicalOCD({sorted(self.context)!r}, "
                f"{self.left!r}, {self.right!r})")

    def __str__(self) -> str:
        return (f"{format_context(self.context)}: "
                f"{self.left} ~ {self.right}")


#: Any canonical OD.
CanonicalOD = Union[CanonicalFD, CanonicalOCD]
