"""Discovery results and per-level statistics.

The paper reports, per run, the total runtime, the number of set-based
ODs split into FDs and order compatible dependencies (OCDs) — e.g.
``17 (16 + 1)`` in Figure 4 — and per-lattice-level breakdowns
(Figure 7).  :class:`DiscoveryResult` carries all of that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.od import CanonicalFD, CanonicalOCD


@dataclass
class LevelStats:
    """Work done while processing one lattice level ``L_l``."""

    level: int
    n_nodes: int = 0
    n_fd_candidates: int = 0
    n_ocd_candidates: int = 0
    n_fds_found: int = 0
    n_ocds_found: int = 0
    n_nodes_pruned: int = 0
    seconds: float = 0.0
    #: resident partition bytes (the three live lattice levels) while
    #: this level validated — the peak-memory ledger of the engine's
    #: release-two-levels-down policy
    peak_partition_bytes: int = 0

    @property
    def n_ods_found(self) -> int:
        return self.n_fds_found + self.n_ocds_found

    def __str__(self) -> str:
        return (f"L{self.level}: {self.n_nodes} nodes, "
                f"{self.n_ods_found} ODs "
                f"({self.n_fds_found} FDs + {self.n_ocds_found} OCDs), "
                f"{self.seconds * 1000:.1f} ms")


@dataclass
class DiscoveryResult:
    """The output of one discovery run.

    ``fds`` are canonical constancy ODs ``X: [] ↦ A``; ``ocds`` are
    canonical order compatibility ODs ``X: A ~ B``.  For minimal runs
    (the default) this is the complete, minimal set ``M`` of Theorem 8.
    """

    algorithm: str
    attribute_names: Tuple[str, ...]
    n_rows: int
    fds: List[CanonicalFD] = field(default_factory=list)
    ocds: List[CanonicalOCD] = field(default_factory=list)
    level_stats: List[LevelStats] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    minimal: bool = True
    config: Dict[str, object] = field(default_factory=dict)
    #: populated when the run was wired to a PartitionCache
    #: (hits/misses/evictions/residency, see PartitionCache.stats())
    cache_stats: Optional[Dict[str, object]] = None
    #: per-phase executor telemetry (tasks dispatched, serial-vs-pool
    #: split, peak partition residency) — populated by every entry
    #: point that routes through :mod:`repro.engine`; see
    #: :meth:`repro.engine.ExecutorTelemetry.snapshot`
    executor_stats: Optional[Dict[str, object]] = None
    #: per-phase wall clock distilled from ``executor_stats`` plus
    #: per-level seconds — the observability layer's profiling
    #: currency; see :func:`repro.engine.telemetry.build_timings`
    timings: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def all_ods(self) -> List[Union[CanonicalFD, CanonicalOCD]]:
        """All discovered canonical ODs, in a stable canonical order."""
        return sorted(self.fds, key=CanonicalFD.sort_key) + sorted(
            self.ocds, key=CanonicalOCD.sort_key)

    @property
    def n_fds(self) -> int:
        return len(self.fds)

    @property
    def n_ocds(self) -> int:
        return len(self.ocds)

    @property
    def n_ods(self) -> int:
        return self.n_fds + self.n_ocds

    @property
    def constants(self) -> List[CanonicalFD]:
        """FDs with an empty context — whole-column constants, the class
        of ODs the paper shows ORDER missing on the flight data."""
        return [fd for fd in self.fds if fd.is_constant]

    def fds_at_level(self, context_size: int) -> List[CanonicalFD]:
        """FDs whose context has exactly ``context_size`` attributes."""
        return [fd for fd in self.fds if len(fd.context) == context_size]

    def ocds_at_level(self, context_size: int) -> List[CanonicalOCD]:
        """OCDs whose context has exactly ``context_size`` attributes."""
        return [od for od in self.ocds if len(od.context) == context_size]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def paper_counts(self) -> str:
        """The paper's ``total (fds + ocds)`` rendering, e.g.
        ``17 (16 + 1)``."""
        return f"{self.n_ods} ({self.n_fds} + {self.n_ocds})"

    def summary(self) -> str:
        """A multi-line human-readable report."""
        lines = [
            f"{self.algorithm} on {len(self.attribute_names)} attributes "
            f"x {self.n_rows} rows",
            f"  ODs: {self.paper_counts()}"
            + ("" if self.minimal else "  [non-minimal enumeration]"),
            f"  time: {self.elapsed_seconds * 1000:.1f} ms"
            + ("  [TIMED OUT]" if self.timed_out else ""),
        ]
        lines.extend(f"  {stats}" for stats in self.level_stats)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering (used by the CLI)."""
        rendered: Dict[str, object] = {
            "algorithm": self.algorithm,
            "attributes": list(self.attribute_names),
            "n_rows": self.n_rows,
            "minimal": self.minimal,
            "timed_out": self.timed_out,
            "elapsed_seconds": self.elapsed_seconds,
            "n_fds": self.n_fds,
            "n_ocds": self.n_ocds,
            "fds": [str(fd) for fd in sorted(self.fds,
                                             key=CanonicalFD.sort_key)],
            "ocds": [str(od) for od in sorted(self.ocds,
                                              key=CanonicalOCD.sort_key)],
            "levels": [
                {
                    "level": s.level,
                    "nodes": s.n_nodes,
                    "fds": s.n_fds_found,
                    "ocds": s.n_ocds_found,
                    "seconds": s.seconds,
                    "peak_partition_bytes": s.peak_partition_bytes,
                }
                for s in self.level_stats
            ],
        }
        if self.cache_stats is not None:
            rendered["cache"] = dict(self.cache_stats)
        if self.executor_stats is not None:
            rendered["executor"] = dict(self.executor_stats)
        if self.timings is not None:
            rendered["timings"] = dict(self.timings)
        return rendered

    def same_ods(self, other: "DiscoveryResult") -> bool:
        """Set equality of the discovered ODs (ignores timings)."""
        return (set(self.fds) == set(other.fds)
                and set(self.ocds) == set(other.ocds))


def od_set(fds: Sequence[CanonicalFD],
           ocds: Sequence[CanonicalOCD]) -> set:
    """A hashable set over mixed canonical ODs (test helper)."""
    return set(fds) | set(ocds)


def diff_results(left: DiscoveryResult, right: DiscoveryResult,
                 max_items: int = 20) -> Optional[str]:
    """Human-readable difference of two results, or None when equal."""
    only_left = od_set(left.fds, left.ocds) - od_set(right.fds, right.ocds)
    only_right = od_set(right.fds, right.ocds) - od_set(left.fds, left.ocds)
    if not only_left and not only_right:
        return None
    lines = []
    if only_left:
        lines.append(f"only in {left.algorithm}:")
        lines.extend(f"  {od}" for od in list(map(str, only_left))[:max_items])
    if only_right:
        lines.append(f"only in {right.algorithm}:")
        lines.extend(
            f"  {od}" for od in list(map(str, only_right))[:max_items])
    return "\n".join(lines)
