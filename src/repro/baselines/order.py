"""The ORDER baseline (Langer & Naumann, VLDB Journal 2016).

A re-implementation of the list-containment-lattice OD discovery
algorithm the paper compares against.  Candidates are list ODs
``S ↦ P`` over *disjoint, duplicate-free* attribute lists, grown one
attribute at a time — a lattice whose size is factorial in ``|R|``.

The aggressive pruning rules of [13] are reproduced deliberately,
**including the incompleteness they cause** (paper Sections 4.5, 5.3):

* *swap pruning*: a candidate falsified by a swap is never extended
  (sound — swaps persist under extension);
* *split pruning*: a candidate falsified by a split is not extended on
  the right-hand side, and its order-compatibility is not tracked —
  so pure order compatible dependencies are never reported;
* *minimality pruning*: a valid candidate is not extended.

Structural gaps (also per the paper): constants ``[] ↦ A`` are never
considered, nor are ODs with repeated attributes (``X ↦ XY``) or with
shared prefixes (``XY ↦ XZ``).

A node/time budget reproduces the paper's "* 5h" did-not-finish runs
gracefully instead of hanging the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.core.mapping import map_list_od
from repro.core.od import CanonicalFD, CanonicalOCD, ListOD, OrderCompatibility
from repro.core.results import DiscoveryResult, LevelStats
from repro.core.validation import order_compatible
from repro.partitions.cache import PartitionCache
from repro.relation.table import Relation

Candidate = Tuple[Tuple[int, ...], Tuple[int, ...]]  # (lhs, rhs) index lists


class _Status(Enum):
    VALID = "valid"          # OD holds: report, stop (minimality pruning)
    SWAP = "swap"            # swap found: stop (swap pruning)
    SPLIT = "split"          # split only: extend the LHS
    DNF = "dnf"              # budget exhausted


@dataclass
class OrderConfig:
    """Budgets for an ORDER run."""

    max_nodes: Optional[int] = 200_000
    timeout_seconds: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {"max_nodes": self.max_nodes,
                "timeout_seconds": self.timeout_seconds}


@dataclass
class OrderResult(DiscoveryResult):
    """ORDER's native output is list ODs; the inherited ``fds``/``ocds``
    fields hold their canonical image (via Theorem 5) so counts are
    directly comparable with FASTOD, the way Figures 4-5 report them."""

    list_ods: List[ListOD] = field(default_factory=list)
    n_nodes_visited: int = 0

    def paper_list_count(self) -> int:
        return len(self.list_ods)


class Order:
    """One ORDER discovery run over one relation instance."""

    def __init__(self, relation: Relation,
                 config: Optional[OrderConfig] = None):
        self._relation = relation
        self._encoded = relation.encode()
        self._config = config or OrderConfig()
        self._names = self._encoded.names
        self._arity = self._encoded.arity
        self._cache = PartitionCache(self._encoded)

    # ------------------------------------------------------------------
    def run(self) -> OrderResult:
        config = self._config
        started = time.perf_counter()
        deadline = (started + config.timeout_seconds
                    if config.timeout_seconds is not None else None)
        result = OrderResult(
            algorithm="ORDER",
            attribute_names=self._names,
            n_rows=self._encoded.n_rows,
            config=config.to_dict(),
        )
        # Level 2: all ordered pairs ([A], [B]).
        current: Dict[Candidate, _Status] = {}
        for lhs in range(self._arity):
            for rhs in range(self._arity):
                if lhs != rhs:
                    current[((lhs,), (rhs,))] = _Status.SPLIT  # placeholder
        level = 2
        while current:
            stats = LevelStats(level=level, n_nodes=len(current))
            level_started = time.perf_counter()
            for candidate in current:
                result.n_nodes_visited += 1
                if self._out_of_budget(result, deadline, config):
                    result.timed_out = True
                    break
                current[candidate] = self._evaluate(candidate, result, stats)
            stats.seconds = time.perf_counter() - level_started
            result.level_stats.append(stats)
            if result.timed_out:
                break
            current = self._next_level(current)
            level += 1
        self._map_to_canonical(result)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    def _out_of_budget(self, result: OrderResult,
                       deadline: Optional[float],
                       config: OrderConfig) -> bool:
        if config.max_nodes is not None \
                and result.n_nodes_visited > config.max_nodes:
            return True
        return deadline is not None and time.perf_counter() > deadline

    def _evaluate(self, candidate: Candidate, result: OrderResult,
                  stats: LevelStats) -> _Status:
        lhs, rhs = candidate
        has_split = self._has_split(lhs, rhs)
        has_swap = self._has_swap(lhs, rhs)
        if not has_split and not has_swap:
            od = ListOD([self._names[i] for i in lhs],
                        [self._names[i] for i in rhs])
            result.list_ods.append(od)
            stats.n_fds_found += 1  # reported per level as "ODs found"
            return _Status.VALID
        if has_swap:
            return _Status.SWAP
        return _Status.SPLIT

    def _has_split(self, lhs: Candidate, rhs: Candidate) -> bool:
        """FD ``set(lhs) → set(rhs)`` fails (Theorem 1's first half)."""
        lhs_mask = 0
        for index in lhs:
            lhs_mask |= 1 << index
        both_mask = lhs_mask
        for index in rhs:
            both_mask |= 1 << index
        return (self._cache.get(lhs_mask).error
                != self._cache.get(both_mask).error)

    def _has_swap(self, lhs: Candidate, rhs: Candidate) -> bool:
        """Order compatibility ``lhs ~ rhs`` fails (second half)."""
        compat = OrderCompatibility([self._names[i] for i in lhs],
                                    [self._names[i] for i in rhs])
        return not order_compatible(self._encoded, compat)

    def _next_level(self, current: Dict[Candidate, _Status]
                    ) -> Dict[Candidate, _Status]:
        """Grow surviving candidates by one trailing attribute.

        Split-falsified candidates extend only their LHS (the split
        persists under RHS extension); valid and swap-falsified ones
        are pruned entirely.  A child is kept only if each of its
        shrunken parents (drop the last LHS / RHS attribute) survived —
        the Apriori condition on the list lattice.
        """
        survivors = {cand for cand, status in current.items()
                     if status is _Status.SPLIT}
        children: Dict[Candidate, _Status] = {}
        for lhs, rhs in survivors:
            used = set(lhs) | set(rhs)
            for attribute in range(self._arity):
                if attribute in used:
                    continue
                children[(lhs + (attribute,), rhs)] = _Status.SPLIT
        return {
            child: _Status.SPLIT
            for child in children
            if self._parents_survived(child, survivors)
        }

    def _parents_survived(self, candidate: Candidate,
                          survivors: set) -> bool:
        lhs, rhs = candidate
        if len(lhs) > 1 and (lhs[:-1], rhs) not in survivors:
            return False
        if len(rhs) > 1 and (lhs, rhs[:-1]) not in survivors:
            return False
        return True

    def _map_to_canonical(self, result: OrderResult) -> None:
        """Translate list ODs to canonical counts (Theorem 5), the way
        Figure 4 reports e.g. "31 list ODs = 31 FDs + 27 OCDs"."""
        fds: Dict[str, CanonicalFD] = {}
        ocds: Dict[str, CanonicalOCD] = {}
        for od in result.list_ods:
            image = map_list_od(od)
            for fd in image.fds:
                fds[str(fd)] = fd
            for ocd in image.ocds:
                ocds[str(ocd)] = ocd
        result.fds = list(fds.values())
        result.ocds = list(ocds.values())


def discover_ods_order(relation: Relation, **config_kwargs) -> OrderResult:
    """Convenience wrapper for the ORDER baseline."""
    return Order(relation, OrderConfig(**config_kwargs)).run()
