"""Baselines the paper compares against, plus the brute-force oracle."""

from repro.baselines.bruteforce import (
    all_valid_canonical_ods,
    all_valid_list_ods,
    minimal_canonical_ods,
    validate_result_is_sound,
)
from repro.baselines.order import (
    Order,
    OrderConfig,
    OrderResult,
    discover_ods_order,
)
from repro.baselines.tane import Tane, TaneConfig, discover_fds

__all__ = [
    "Order",
    "OrderConfig",
    "OrderResult",
    "Tane",
    "TaneConfig",
    "all_valid_canonical_ods",
    "all_valid_list_ods",
    "discover_fds",
    "discover_ods_order",
    "minimal_canonical_ods",
    "validate_result_is_sound",
]
