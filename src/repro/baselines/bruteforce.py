"""Exhaustive ground-truth discovery (the testing oracle).

Enumerates *every* context set and candidate, validating each one
directly.  Exponential-times-quadratic cost — only usable on small
relations — but its correctness is immediate from the definitions,
which makes it the oracle that FASTOD's completeness and minimality
(Theorem 8) are tested against.
"""

from __future__ import annotations

import time
from itertools import combinations, permutations
from typing import Iterator, List, Optional, Set, Tuple

from repro.core.od import CanonicalFD, CanonicalOCD, ListOD
from repro.core.results import DiscoveryResult
from repro.core.validation import (
    CanonicalValidator,
    is_compatible_in_classes,
    is_constant_in_classes,
    list_od_holds,
)
from repro.partitions.cache import PartitionCache
from repro.relation.schema import bit_count, iter_bits
from repro.relation.table import Relation


def _submasks_proper(mask: int) -> Iterator[int]:
    """All proper submasks of ``mask`` (excluding ``mask`` itself)."""
    if mask == 0:
        return
    sub = (mask - 1) & mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def all_valid_canonical_ods(relation: Relation,
                            max_context: Optional[int] = None
                            ) -> Tuple[Set[CanonicalFD], Set[CanonicalOCD]]:
    """Every valid *non-trivial* canonical OD on the instance.

    FDs are keyed by (context, attribute) with ``A ∉ X``; OCDs by
    (context, {A,B}) with ``A,B ∉ X`` and ``A ≠ B``.
    """
    encoded = relation.encode()
    cache = PartitionCache(encoded)
    names = encoded.names
    arity = encoded.arity
    fds: Set[CanonicalFD] = set()
    ocds: Set[CanonicalOCD] = set()
    for context_mask in range(1 << arity):
        if max_context is not None and bit_count(context_mask) > max_context:
            continue
        partition = cache.get(context_mask)
        context = frozenset(names[i] for i in iter_bits(context_mask))
        outside = [a for a in range(arity) if not context_mask & (1 << a)]
        for attribute in outside:
            if is_constant_in_classes(encoded.column(attribute), partition):
                fds.add(CanonicalFD(context, names[attribute]))
        for a, b in combinations(outside, 2):
            if is_compatible_in_classes(encoded.column(a),
                                        encoded.column(b), partition):
                ocds.add(CanonicalOCD(context, names[a], names[b]))
    return fds, ocds


def minimal_canonical_ods(relation: Relation) -> DiscoveryResult:
    """The complete *minimal* set of canonical ODs, by definition.

    * ``X: [] ↦ A`` is minimal iff valid, non-trivial, and no proper
      subset context ``Y ⊂ X`` has ``Y: [] ↦ A`` valid
      (Augmentation-I).
    * ``X: A ~ B`` is minimal iff valid, non-trivial, no proper subset
      context works (Augmentation-II), and neither ``X: [] ↦ A`` nor
      ``X: [] ↦ B`` is valid (Propagate).
    """
    started = time.perf_counter()
    valid_fds, valid_ocds = all_valid_canonical_ods(relation)
    fd_keys = {(fd.context, fd.attribute) for fd in valid_fds}
    ocd_keys = {(od.context, od.pair) for od in valid_ocds}
    names = relation.names
    index = {name: i for i, name in enumerate(names)}

    def mask_of(context) -> int:
        mask = 0
        for name in context:
            mask |= 1 << index[name]
        return mask

    def has_smaller_context(context, probe) -> bool:
        context_mask = mask_of(context)
        for sub in _submasks_proper(context_mask):
            sub_context = frozenset(names[i] for i in iter_bits(sub))
            if probe(sub_context):
                return True
        return False

    minimal_fds = [
        fd for fd in valid_fds
        if not has_smaller_context(
            fd.context, lambda ctx, a=fd.attribute: (ctx, a) in fd_keys)
    ]
    minimal_ocds = [
        od for od in valid_ocds
        if (od.context, od.left) not in ocd_trivializers(fd_keys)
        and (od.context, od.left) not in fd_keys
        and (od.context, od.right) not in fd_keys
        and not has_smaller_context(
            od.context, lambda ctx, p=od.pair: (ctx, p) in ocd_keys)
    ]
    result = DiscoveryResult(
        algorithm="BruteForce",
        attribute_names=names,
        n_rows=relation.n_rows,
        fds=sorted(minimal_fds, key=CanonicalFD.sort_key),
        ocds=sorted(minimal_ocds, key=CanonicalOCD.sort_key),
    )
    result.elapsed_seconds = time.perf_counter() - started
    return result


def ocd_trivializers(fd_keys) -> set:
    """Placeholder hook kept separate for clarity; minimality of OCDs
    only depends on the two Propagate checks and the subset scan, so
    this returns an empty set."""
    return set()


def all_valid_list_ods(relation: Relation, max_lhs: int = 2,
                       max_rhs: int = 2) -> List[ListOD]:
    """Every valid list OD ``X ↦ Y`` over duplicate-free specs of
    bounded length (used to audit the ORDER baseline's completeness)."""
    names = relation.names
    encoded = relation.encode()
    found: List[ListOD] = []
    lhs_specs = _specs(names, max_lhs)
    rhs_specs = _specs(names, max_rhs)
    for lhs in lhs_specs:
        for rhs in rhs_specs:
            if not rhs:
                continue
            od = ListOD(lhs, rhs)
            if list_od_holds(encoded, od):
                found.append(od)
    return found


def _specs(names, max_len: int) -> List[Tuple[str, ...]]:
    specs: List[Tuple[str, ...]] = [()]
    for length in range(1, max_len + 1):
        specs.extend(permutations(names, length))
    return specs


def validate_result_is_sound(relation: Relation,
                             result: DiscoveryResult) -> List[str]:
    """Re-validate every OD in a result; returns a list of violations
    (empty means sound).  Used by tests on every algorithm."""
    validator = CanonicalValidator(relation.encode())
    complaints = []
    for od in result.all_ods:
        if not validator.holds(od):
            complaints.append(f"reported OD does not hold: {od}")
    return complaints
