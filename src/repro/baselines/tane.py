"""TANE-style FD discovery (Huhtala et al., ICDE 1998).

The paper's Exp-4 baseline: FD discovery with stripped partitions and
``C+`` candidate sets.  FASTOD subsumes this machinery; keeping an
independent implementation measures the *extra* cost of order semantics
and cross-checks the FD fragment (the paper observes both algorithms
find exactly the same FDs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.candidates import LatticeNode, compute_cc, context_names
from repro.core.lattice import next_level_masks, parents_for_partition
from repro.core.od import CanonicalFD
from repro.core.results import DiscoveryResult, LevelStats
from repro.partitions.partition import StrippedPartition
from repro.relation.schema import iter_bits
from repro.relation.table import Relation


@dataclass
class TaneConfig:
    """Knobs for a TANE run (subset of FASTOD's)."""

    max_level: Optional[int] = None
    timeout_seconds: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {"max_level": self.max_level,
                "timeout_seconds": self.timeout_seconds}


class Tane:
    """Level-wise minimal FD discovery.

    Produces :class:`CanonicalFD` objects (``X: [] ↦ A`` is the FD
    ``X → A`` by Theorem 2), so results are directly comparable with
    FASTOD's FD fragment.
    """

    def __init__(self, relation: Relation,
                 config: Optional[TaneConfig] = None):
        self._relation = relation
        self._encoded = relation.encode()
        self._config = config or TaneConfig()
        self._names = self._encoded.names
        self._arity = self._encoded.arity
        self._full_mask = (1 << self._arity) - 1

    def run(self) -> DiscoveryResult:
        config = self._config
        started = time.perf_counter()
        deadline = (started + config.timeout_seconds
                    if config.timeout_seconds is not None else None)
        result = DiscoveryResult(
            algorithm="TANE",
            attribute_names=self._names,
            n_rows=self._encoded.n_rows,
            config=config.to_dict(),
        )
        n_rows = self._encoded.n_rows
        previous: Dict[int, LatticeNode] = {
            0: LatticeNode(0, StrippedPartition.single_class(n_rows),
                           cc=self._full_mask)
        }
        current: Dict[int, LatticeNode] = {
            1 << a: LatticeNode(
                1 << a, StrippedPartition.for_attribute(self._encoded, a))
            for a in range(self._arity)
        }
        level = 1
        while current:
            if config.max_level is not None and level > config.max_level:
                break
            stats = LevelStats(level=level, n_nodes=len(current))
            level_started = time.perf_counter()
            for mask, node in current.items():
                if deadline is not None and time.perf_counter() > deadline:
                    result.timed_out = True
                    break
                node.cc = compute_cc(mask, previous)
                for attribute in list(iter_bits(mask & node.cc)):
                    bit = 1 << attribute
                    context_node = previous[mask ^ bit]
                    stats.n_fd_candidates += 1
                    if context_node.partition.error == node.partition.error:
                        result.fds.append(CanonicalFD(
                            context_names(mask ^ bit, self._names),
                            self._names[attribute]))
                        stats.n_fds_found += 1
                        node.cc &= ~bit
                        node.cc &= mask
            if result.timed_out:
                result.level_stats.append(stats)
                break
            # prune nodes with empty C+ (TANE's rule; level >= 2 only,
            # mirroring FASTOD so the two sweeps stay comparable)
            if level >= 2:
                doomed = [m for m, node in current.items() if not node.cc]
                for m in doomed:
                    del current[m]
                stats.n_nodes_pruned = len(doomed)
            stats.seconds = time.perf_counter() - level_started
            result.level_stats.append(stats)
            next_nodes: Dict[int, LatticeNode] = {}
            for mask in next_level_masks(current.keys()):
                left, right = parents_for_partition(mask)
                next_nodes[mask] = LatticeNode(
                    mask,
                    current[left].partition.product(current[right].partition))
            previous = current
            current = next_nodes
            level += 1
        result.elapsed_seconds = time.perf_counter() - started
        return result


def discover_fds(relation: Relation, **config_kwargs) -> DiscoveryResult:
    """Convenience wrapper mirroring :func:`repro.core.fastod.discover_ods`."""
    return Tane(relation, TaneConfig(**config_kwargs)).run()
