"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is malformed or an attribute is unknown."""


class DataError(ReproError):
    """A relation instance is malformed (ragged rows, bad CSV, ...)."""


class DependencyError(ReproError):
    """A dependency expression is malformed (e.g. repeated attributes
    where the canonical form forbids them)."""


class ParseError(DependencyError):
    """A textual dependency could not be parsed."""


class DiscoveryBudgetExceeded(ReproError):
    """A discovery run exceeded its configured node or time budget.

    The ORDER baseline uses this to report "did not finish" the way the
    paper reports "* 5h" runs.
    """

    def __init__(self, message: str, elapsed_seconds: float = 0.0,
                 nodes_visited: int = 0):
        super().__init__(message)
        self.elapsed_seconds = elapsed_seconds
        self.nodes_visited = nodes_visited
