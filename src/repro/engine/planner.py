"""The unified lattice traversal: one planner, pluggable backends.

Before this module, FASTOD's level-wise sweep (Algorithms 1-4 of the
paper) was re-implemented by every consumer — the from-scratch engine,
the incremental engine's cache-replaying traversal, and (in spirit) the
hybrid escalation.  :class:`LatticePlanner` now owns the one canonical
copy of the control flow:

* level iteration and Apriori level generation (Algorithm 2),
* candidate-set (``C_c+``/``C_s+``) population and mutation
  (Algorithm 3) — **always serial**, on the coordinator,
* node pruning (Algorithm 4),
* per-level statistics, deadline checks, and the three-level partition
  residency window,

and emits typed tasks (:class:`~repro.engine.tasks.FdCheckTask`,
:class:`~repro.engine.tasks.OcdScanTask`,
:class:`~repro.engine.tasks.ProductTask`) in a deterministic order.  A
:class:`TraversalBackend` answers them: :class:`PartitionBackend`
resolves against stripped partitions through an executor (the
from-scratch engines, serial or pooled), while the incremental engine
plugs in a verdict-cache backend.  Emission order and candidate-set
mutation live in the planner alone, so every backend produces
byte-identical FD/OCD sets by construction.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.core.candidates import (
    LatticeNode,
    context_names,
    fill_candidate_sets,
    prune_empty_nodes,
)
from repro.core.lattice import next_level_masks, parents_for_partition
from repro.core.od import CanonicalFD, CanonicalOCD
from repro.core.results import DiscoveryResult, LevelStats
from repro.engine.budget import DeadlineBudget
from repro.engine.tasks import FdCheckTask, OcdScanTask, ProductTask
from repro.engine.telemetry import build_timings
from repro.obs import metrics, trace
from repro.partitions.cache import PartitionCache
from repro.partitions.partition import StrippedPartition
from repro.relation.encoding import EncodedRelation
from repro.relation.schema import iter_bits

_LEVELS = metrics.counter(
    "repro_planner_levels_total",
    "Lattice levels fully processed by the planner")
_LEVEL_SECONDS = metrics.histogram(
    "repro_planner_level_seconds",
    "Wall-clock seconds per lattice level (candidate phases plus "
    "pruning; products bill to the next level)")


def level_partition_bytes(*levels: Dict[int, LatticeNode]) -> int:
    """Resident partition bytes across lattice level dicts."""
    total = 0
    for nodes in levels:
        for node in nodes.values():
            partition = node.partition
            if partition is not None:
                total += partition.rows.nbytes + partition.offsets.nbytes
    return total


class TraversalBackend:
    """What a :class:`LatticePlanner` needs answered.

    The planner owns *order* (which tasks exist, and in what sequence
    verdicts are applied); a backend owns *truth* (how a task is
    decided) and, when partitions are involved, their storage."""

    def root_node(self) -> LatticeNode:
        """The level-0 node (empty context)."""
        raise NotImplementedError

    def first_level(self) -> Dict[int, LatticeNode]:
        """The singleton nodes of level 1."""
        raise NotImplementedError

    def fd_verdict(self, task: FdCheckTask, node: LatticeNode,
                   previous: Dict[int, LatticeNode]) -> bool:
        raise NotImplementedError

    def fd_emitted(self, task: FdCheckTask) -> None:
        """Hook: a valid FD was emitted (incremental bookkeeping)."""

    def fd_phase_complete(self, level: int, n_candidates: int,
                          seconds: float = 0.0) -> None:
        """Hook: one level's FD phase finished after checking
        ``n_candidates`` tasks in ``seconds`` (telemetry — called once
        per level, not per candidate, because the verdict itself is
        O(1))."""

    def ocd_verdicts(self, level: int, tasks: List[OcdScanTask],
                     before_previous: Dict[int, LatticeNode]
                     ) -> Tuple[Dict[OcdScanTask, bool], bool]:
        """Batch verdicts keyed by task, plus a timed-out flag.  A task
        missing from the dict was cut by the deadline (the planner
        keeps earlier verdicts and flags the run)."""
        raise NotImplementedError

    def build_level(self, masks: List[int],
                    current: Dict[int, LatticeNode]
                    ) -> Optional[Dict[int, LatticeNode]]:
        """Nodes for the next level, or ``None`` when the deadline
        expired before its partitions were all built."""
        raise NotImplementedError

    def resident_bytes(self, *levels: Dict[int, LatticeNode]) -> int:
        return 0

    def release(self, nodes: Dict[int, LatticeNode]) -> None:
        """A spent level (two below current) will never be read again."""

    def finish(self, result: DiscoveryResult) -> None:
        """Attach backend-specific reporting (cache/executor stats)."""


class LatticePlanner:
    """Drives one level-wise sweep over the set-containment lattice.

    The planner is backend-agnostic: it never touches a partition or a
    verdict cache itself.  All ``cc``/``cs`` mutations happen here, in
    the serial engine's historical order, so a run's output is a pure
    function of the backend's verdicts.
    """

    def __init__(self, names: Tuple[str, ...], config,
                 backend: TraversalBackend, budget: DeadlineBudget,
                 algorithm: str, n_rows: int):
        self._names = names
        self._config = config
        self._backend = backend
        self._budget = budget
        self._algorithm = algorithm
        self._n_rows = n_rows
        self._full_mask = (1 << len(names)) - 1

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def run(self) -> DiscoveryResult:
        config = self._config
        backend = self._backend
        started = time.perf_counter()
        result = DiscoveryResult(
            algorithm=self._algorithm,
            attribute_names=self._names,
            n_rows=self._n_rows,
            minimal=config.minimality_pruning,
            config=config.to_dict(),
        )

        previous = {0: backend.root_node()}
        current = backend.first_level()
        before_previous: Dict[int, LatticeNode] = {}

        level = 1
        while current:
            if config.max_level is not None and level > config.max_level:
                break
            stats = LevelStats(level=level, n_nodes=len(current))
            level_started = time.perf_counter()
            with trace.span("level", level=level,
                            nodes=len(current)):
                stats.peak_partition_bytes = backend.resident_bytes(
                    before_previous, previous, current)

                fill_candidate_sets(level, current, previous,
                                    self._full_mask,
                                    config.minimality_pruning)
                timed_out = self._compute_ods(
                    level, current, previous, before_previous,
                    result, stats)
                # partitions two levels down were consumed for the
                # last time by this level's OCD contexts — release
                # them before the next level's products allocate, so
                # at most three levels of partitions are ever resident
                backend.release(before_previous)
                before_previous = {}
                stats.n_nodes_pruned = self._prune_level(level, current)
            stats.seconds = time.perf_counter() - level_started
            result.level_stats.append(stats)
            _LEVELS.inc()
            _LEVEL_SECONDS.observe(stats.seconds)
            if timed_out:
                result.timed_out = True
                break

            with trace.span("products", level=level + 1):
                next_nodes = backend.build_level(
                    next_level_masks(current.keys()), current)
            if next_nodes is None:     # deadline hit during products
                result.timed_out = True
                break
            before_previous = previous
            previous = current
            current = next_nodes
            level += 1

        result.elapsed_seconds = time.perf_counter() - started
        backend.finish(result)
        result.timings = build_timings(result.executor_stats,
                                       result.level_stats)
        return result

    # ------------------------------------------------------------------
    # Algorithm 3: the FD phase, then the OCD phase
    # ------------------------------------------------------------------
    def _compute_ods(self, level: int, current: Dict[int, LatticeNode],
                     previous: Dict[int, LatticeNode],
                     before_previous: Dict[int, LatticeNode],
                     result: DiscoveryResult,
                     stats: LevelStats) -> bool:
        """Returns True when the deadline was hit mid-level.

        Four phases, so scan work can shard across an executor while
        every candidate-set mutation stays serial:

        1. constancy ODs for every node, applied in node order;
        2. enumerate the level's OCD candidates (minimality pre-checks
           read the *previous* level's ``C_c+``, which this level never
           mutates — so enumeration order cannot matter);
        3. batch verdicts from the backend (pooled or serial);
        4. apply verdicts in emission order (``cs`` mutations and
           emission order byte-identical to the serial engine).
        """
        backend = self._backend
        names = self._names
        minimal = self._config.minimality_pruning
        fd_started = time.perf_counter()
        with trace.span("fd-check", level=level):
            for mask, node in current.items():
                if self._budget.hit():
                    backend.fd_phase_complete(
                        level, stats.n_fd_candidates,
                        time.perf_counter() - fd_started)
                    return True
                # --- constancy ODs  X \ A: [] -> A ---------------------
                for attribute in list(iter_bits(mask & node.cc)):
                    bit = 1 << attribute
                    task = FdCheckTask(mask, attribute)
                    stats.n_fd_candidates += 1
                    if backend.fd_verdict(task, node, previous):
                        result.fds.append(CanonicalFD(
                            context_names(mask ^ bit, names),
                            names[attribute]))
                        backend.fd_emitted(task)
                        stats.n_fds_found += 1
                        if minimal:
                            node.cc &= ~bit      # remove A
                            node.cc &= mask      # remove all B in R \ X
            backend.fd_phase_complete(level, stats.n_fd_candidates,
                                      time.perf_counter() - fd_started)
        if level < 2:
            return False
        # one huge FD phase must not push the OCD scans past the
        # budget: re-check before any swap scanning starts
        if self._budget.hit():
            return True

        # --- order compatibility ODs  X \ {A,B}: A ~ B ----------------
        tasks: List[OcdScanTask] = []
        for mask, node in current.items():
            for pair in sorted(node.cs):
                a, b = pair
                if minimal:
                    # Algorithm 3 line 18: minimality via C_c+ of
                    # parents (fixed since the previous level).
                    if (not previous[mask ^ (1 << b)].cc & (1 << a)
                            or not previous[mask ^ (1 << a)].cc
                            & (1 << b)):
                        node.cs.discard(pair)
                        continue
                stats.n_ocd_candidates += 1
                tasks.append(OcdScanTask(mask, a, b))

        with trace.span("ocd-scan", level=level,
                        candidates=len(tasks)):
            verdicts, timed_out = backend.ocd_verdicts(
                level, tasks, before_previous)

        for task in tasks:
            verdict = verdicts.get(task)
            if verdict is None:
                continue   # the deadline cut this scan; keep the rest
            if verdict:
                result.ocds.append(CanonicalOCD(
                    context_names(task.context_mask, names),
                    names[task.a], names[task.b]))
                stats.n_ocds_found += 1
                if minimal:
                    current[task.node_mask].cs.discard(task.pair)
        return timed_out

    # ------------------------------------------------------------------
    # Algorithm 4
    # ------------------------------------------------------------------
    def _prune_level(self, level: int,
                     current: Dict[int, LatticeNode]) -> int:
        config = self._config
        if (not config.level_pruning or not config.minimality_pruning
                or level < 2):
            return 0
        return prune_empty_nodes(current)


class PartitionBackend(TraversalBackend):
    """The stripped-partition truth source (the from-scratch engines).

    Owns the partition lifecycle FASTOD historically inlined: level-1
    partitions sourced through an optional
    :class:`~repro.partitions.cache.PartitionCache`, level products
    dispatched to the executor (``cache.peek`` respected, products
    ``cache.put`` back), OCD contexts resolved two levels down, the
    three-level residency window with bounded-cache invalidation on
    release, and superkey shortcuts (Lemmas 12-13) resolved O(1) on
    the coordinator before anything is dispatched.
    """

    def __init__(self, relation: EncodedRelation, config,
                 executor, budget: DeadlineBudget,
                 cache: Optional[PartitionCache] = None):
        self._relation = relation
        self._config = config
        self._executor = executor
        self._budget = budget
        self._cache = cache

    # -- partition sourcing --------------------------------------------
    def root_node(self) -> LatticeNode:
        full_mask = (1 << self._relation.arity) - 1
        return LatticeNode(
            0, StrippedPartition.single_class(self._relation.n_rows),
            cc=full_mask, cs=set())

    def first_level(self) -> Dict[int, LatticeNode]:
        return {
            1 << a: LatticeNode(1 << a, self._attribute_partition(a))
            for a in range(self._relation.arity)
        }

    def _attribute_partition(self, attribute: int) -> StrippedPartition:
        if self._cache is not None:
            return self._cache.get(1 << attribute)
        return StrippedPartition.for_attribute(self._relation, attribute)

    def build_level(self, masks: List[int],
                    current: Dict[int, LatticeNode]
                    ) -> Optional[Dict[int, LatticeNode]]:
        cache = self._cache
        partitions: Dict[int, Optional[StrippedPartition]] = {}
        pending: List[ProductTask] = []
        for mask in masks:
            partition = cache.peek(mask) if cache is not None else None
            if partition is None:
                left, right = parents_for_partition(mask)
                pending.append(ProductTask(mask, left, right))
            partitions[mask] = partition

        if pending:
            parent_masks = {task.left for task in pending}
            parent_masks.update(task.right for task in pending)
            parents = {mask: current[mask].partition
                       for mask in parent_masks}
            computed, timed_out = self._executor.run_products(
                parents, pending, self._budget)
            if timed_out:
                return None    # a half-built level is never traversed
            for task in pending:
                partition = computed[task.child]
                partitions[task.child] = partition
                if cache is not None:
                    cache.put(task.child, partition)

        return {mask: LatticeNode(mask, partition)
                for mask, partition in partitions.items()}

    # -- verdicts -------------------------------------------------------
    def fd_verdict(self, task: FdCheckTask, node: LatticeNode,
                   previous: Dict[int, LatticeNode]) -> bool:
        """``X \\ A: [] ↦ A`` via the partition error test: the FD
        holds iff refining the context by ``A`` merges nothing, i.e.
        ``e(Π_{X\\A}) == e(Π_X)`` (Section 4.6).  A superkey context
        has error 0 on both sides — exactly Lemma 12's shortcut."""
        context_node = previous[task.context_mask]
        if (self._config.key_pruning
                and context_node.partition.is_superkey()):
            return True
        return context_node.partition.error == node.partition.error

    def ocd_verdicts(self, level: int, tasks: List[OcdScanTask],
                     before_previous: Dict[int, LatticeNode]
                     ) -> Tuple[Dict[OcdScanTask, bool], bool]:
        """Superkey contexts resolve O(1) on the coordinator
        (Lemma 13); the rest go to the executor, which shards across
        the pool when the level is big enough."""
        verdicts: Dict[OcdScanTask, bool] = {}
        contexts: Dict[int, StrippedPartition] = {}
        scan_tasks = []
        key_pruning = self._config.key_pruning
        n_pruned = 0
        for task in tasks:
            context = self._context_partition(level, task,
                                              before_previous)
            if key_pruning and context.is_superkey():
                verdicts[task] = True
                n_pruned += 1
                continue
            contexts.setdefault(task.context_mask, context)
            scan_tasks.append((task, task.context_mask, "swap",
                               task.a, task.b))
        self._executor.telemetry.record("ocd-keyprune", n_pruned, False)
        if not scan_tasks:
            return verdicts, False
        scanned, timed_out = self._executor.run_scans(
            contexts, scan_tasks, self._budget, phase="ocd-scan")
        verdicts.update(scanned)
        return verdicts, timed_out

    def fd_phase_complete(self, level: int, n_candidates: int,
                          seconds: float = 0.0) -> None:
        self._executor.telemetry.record("fd-check", n_candidates,
                                        False, seconds)

    def _context_partition(self, level: int, task: OcdScanTask,
                           before_previous: Dict[int, LatticeNode]
                           ) -> StrippedPartition:
        """Π* of the context ``X \\ {A,B}`` — two levels down the
        lattice (the empty context at level 2)."""
        if level == 2:
            return StrippedPartition.single_class(self._relation.n_rows)
        return before_previous[task.context_mask].partition

    # -- lifecycle ------------------------------------------------------
    def resident_bytes(self, *levels: Dict[int, LatticeNode]) -> int:
        resident = level_partition_bytes(*levels)
        self._executor.telemetry.observe_residency(resident)
        return resident

    def release(self, nodes: Dict[int, LatticeNode]) -> None:
        """Drop a spent level's partitions (and, for bounded caches,
        their composite cache entries — unbounded caches keep retaining
        everything by contract)."""
        if not nodes:
            return
        if self._cache is not None and self._cache.max_entries is not None:
            self._cache.invalidate(
                [mask for mask in nodes if mask & (mask - 1)])
        for node in nodes.values():
            node.partition = None

    def finish(self, result: DiscoveryResult) -> None:
        if self._cache is not None:
            result.cache_stats = self._cache.stats()
        result.executor_stats = self._executor.telemetry.snapshot()
