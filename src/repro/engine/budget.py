"""One wall-clock budget shared by every layer of a discovery run.

Before the unified engine, each traversal carried its own deadline
arithmetic: :class:`~repro.core.fastod.FastOD` kept a raw
``perf_counter`` deadline and a ``_deadline_hit`` static method, the
hybrid escalation loop had none (a budget could only die *inside* a
wave, and was noticed one full wave later), and the incremental batch
loop re-implemented the "no timeouts here" rule ad hoc.
:class:`DeadlineBudget` replaces all three: the coordinator creates one
per run, every planner/executor layer consults the same instance, and
worker pools receive :attr:`deadline` for their cooperative in-task
checks.
"""

from __future__ import annotations

import time
from typing import Optional


class DeadlineBudget:
    """A best-effort wall-clock budget for one discovery run.

    ``perf_counter`` currency throughout — the same clock
    :class:`repro.parallel.WorkerPool` translates into wall time for
    its cooperative worker-side checks.  An unlimited budget
    (``timeout_seconds=None``) never hits; :meth:`hit` is a cheap
    attribute test so hot loops can consult it per task.

    A budget can also be revoked early: :meth:`cancel` (thread-safe —
    it only sets a flag) makes every subsequent :meth:`hit` return
    True, so a traversal handed a shared budget stops at its next
    check exactly as if the wall clock had expired.  This is how the
    service layer's job scheduler cancels a *running* job: the HTTP
    thread cancels the budget, the planner notices between tasks, and
    the run returns its partial result flagged ``timed_out``.
    Worker-side cooperative checks key off :attr:`deadline` only, so a
    cancelled dispatch drains at the next coordinator check rather
    than mid-chunk.
    """

    __slots__ = ("started", "deadline", "cancelled")

    def __init__(self, timeout_seconds: Optional[float] = None):
        self.started = time.perf_counter()
        self.deadline: Optional[float] = (
            None if timeout_seconds is None
            else self.started + timeout_seconds)
        self.cancelled = False

    @classmethod
    def unlimited(cls) -> "DeadlineBudget":
        """A budget that never expires (incremental traversals, which
        must run to completion to keep their snapshots consistent)."""
        return cls(None)

    @property
    def bounded(self) -> bool:
        return self.deadline is not None

    def cancel(self) -> None:
        """Revoke the budget: every later :meth:`hit` returns True."""
        self.cancelled = True

    def hit(self) -> bool:
        """True once the budget is exhausted or cancelled (always
        False when unbounded and not cancelled)."""
        if self.cancelled:
            return True
        return (self.deadline is not None
                and time.perf_counter() > self.deadline)

    def remaining(self) -> Optional[float]:
        """Seconds left, or ``None`` when unbounded.  Never negative —
        an exhausted (or cancelled) budget reports 0.0, so it can be
        handed to a sub-run's ``timeout_seconds`` directly."""
        if self.cancelled:
            return 0.0
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.perf_counter())

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.deadline is None:
            return "DeadlineBudget(unlimited)"
        return f"DeadlineBudget(remaining={self.remaining():.3f}s)"
