"""The unified discovery engine: one planner, pluggable executors.

FASTOD's level-wise traversal is conceptually one algorithm; this
package keeps it that way.  :class:`LatticePlanner` owns level
iteration, candidate-set mutation, pruning, and the partition residency
window, emitting typed tasks (:class:`ProductTask`,
:class:`FdCheckTask`, :class:`OcdScanTask`) in a deterministic order;
executors (:class:`SerialExecutor`, :class:`PoolExecutor`) decide where
those tasks run; and one :class:`DeadlineBudget` per run is consulted
by every layer.  The from-scratch, hybrid, incremental, validator, and
extension entry points all consume this engine — a new backend (async,
distributed) is a new executor, not another traversal fork.
"""

from repro.engine.budget import DeadlineBudget
from repro.engine.executors import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.planner import (
    LatticePlanner,
    PartitionBackend,
    TraversalBackend,
    level_partition_bytes,
)
from repro.engine.tasks import FdCheckTask, OcdScanTask, ProductTask
from repro.engine.telemetry import ExecutorTelemetry

__all__ = [
    "DeadlineBudget",
    "Executor",
    "ExecutorTelemetry",
    "FdCheckTask",
    "LatticePlanner",
    "OcdScanTask",
    "PartitionBackend",
    "PoolExecutor",
    "ProductTask",
    "SerialExecutor",
    "TraversalBackend",
    "level_partition_bytes",
    "make_executor",
]
