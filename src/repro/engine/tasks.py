"""Typed work units emitted by the planner and run by executors.

The planner/executor contract is deliberately narrow: a
:class:`LatticePlanner` (which owns all candidate-set state) emits
immutable task records in a deterministic order, and an executor
resolves them — serially, across a worker pool, or against a verdict
cache — returning results keyed by the task objects themselves.
Because the records are frozen and hashable, the *apply* step can walk
the original emission order and look verdicts up by task, which is what
keeps pooled runs byte-identical to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ProductTask:
    """Build Π*_child as ``Π*_left · Π*_right`` (Algorithm 2 +
    Section 4.6 partition products)."""

    child: int
    left: int
    right: int


@dataclass(frozen=True)
class FdCheckTask:
    """Check the constancy OD ``X \\ A: [] ↦ A`` at node ``X``
    (Algorithm 3 lines 9-14)."""

    node_mask: int
    attribute: int

    @property
    def context_mask(self) -> int:
        return self.node_mask ^ (1 << self.attribute)


@dataclass(frozen=True)
class OcdScanTask:
    """Check the order compatibility OD ``X \\ {A,B}: A ~ B`` at node
    ``X`` (Algorithm 3 lines 15-25); ``a < b`` by construction."""

    node_mask: int
    a: int
    b: int

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.a, self.b)

    @property
    def context_mask(self) -> int:
        return self.node_mask ^ (1 << self.a) ^ (1 << self.b)
