"""Per-phase executor telemetry.

Every executor carries one :class:`ExecutorTelemetry` and records, per
planner phase (``products``, ``fd-check``, ``ocd-scan``, ``wave``,
``class-scan``, ...), how many typed tasks it resolved, whether each
batch ran on the coordinator or on the worker pool, and how long the
batches took.  The snapshot is a plain JSON-ready dict so every entry
point can expose it uniformly — ``DiscoveryResult.executor_stats``,
``repro-od ... --json``, and the validator/detector accessors all
serve the same shape.

Each record also bills the process-wide metrics registry
(:mod:`repro.obs.metrics`), so a live ``repro-od serve`` exposes the
same task/latency truth at ``/metrics`` without a second accounting
path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs import metrics

_TASKS = metrics.counter(
    "repro_executor_tasks_total",
    "Typed tasks resolved, by planner phase and execution mode",
    ("phase", "mode"))
_DISPATCHES = metrics.counter(
    "repro_executor_dispatches_total",
    "Task batches dispatched, by planner phase", ("phase",))
_PHASE_SECONDS = metrics.histogram(
    "repro_executor_phase_seconds",
    "Wall-clock seconds per dispatched batch, by planner phase",
    ("phase",))
_RETRIES = metrics.counter(
    "repro_executor_retries_total",
    "Crashed pool dispatches re-run after a rebuild")
_REBUILDS = metrics.counter(
    "repro_executor_rebuilds_total",
    "Worker pools rebuilt after a crash/stall teardown")
_DEGRADED = metrics.counter(
    "repro_executor_degraded_total",
    "Batches quarantined to the serial path after repeated crashes")


class ExecutorTelemetry:
    """Counters for one executor's lifetime (cheap, always on)."""

    __slots__ = ("backend", "workers", "phases", "peak_residency_bytes",
                 "retries", "rebuilds", "degraded")

    def __init__(self, backend: str, workers: int):
        self.backend = backend
        self.workers = workers
        #: phase -> {"tasks", "serial_tasks", "pool_tasks",
        #: "dispatches", "seconds"}
        self.phases: Dict[str, Dict[str, float]] = {}
        #: largest resident partition footprint observed (bytes); fed by
        #: the planner's per-level residency accounting
        self.peak_residency_bytes = 0
        #: crashed dispatches re-run after a pool rebuild (the
        #: fault-tolerance layer's currency: a recovered job reports
        #: ``retries >= 1`` instead of failing)
        self.retries = 0
        #: worker pools rebuilt after a crash/stall teardown
        self.rebuilds = 0
        #: True once a batch was quarantined to the serial path after
        #: repeated crashes (poison-task quarantine)
        self.degraded = False

    def record(self, phase: str, n_tasks: int, pooled: bool,
               seconds: float = 0.0) -> None:
        """Bill one batch of ``n_tasks`` resolved tasks (and the wall
        clock the batch took) to ``phase``."""
        if n_tasks <= 0:
            return
        stats = self.phases.get(phase)
        if stats is None:
            stats = {"tasks": 0, "serial_tasks": 0, "pool_tasks": 0,
                     "dispatches": 0, "seconds": 0.0}
            self.phases[phase] = stats
        stats["tasks"] += n_tasks
        stats["pool_tasks" if pooled else "serial_tasks"] += n_tasks
        stats["dispatches"] += 1
        stats["seconds"] += seconds
        _TASKS.inc(n_tasks, phase=phase,
                   mode="pool" if pooled else "serial")
        _DISPATCHES.inc(phase=phase)
        _PHASE_SECONDS.observe(seconds, phase=phase)

    def observe_residency(self, n_bytes: int) -> None:
        if n_bytes > self.peak_residency_bytes:
            self.peak_residency_bytes = n_bytes

    def record_retry(self) -> None:
        """Bill one crashed dispatch that will be re-run."""
        self.retries += 1
        _RETRIES.inc()

    def record_rebuild(self) -> None:
        """Bill one pool rebuilt after a crash/stall teardown."""
        self.rebuilds += 1
        _REBUILDS.inc()

    def mark_degraded(self) -> None:
        """Record that a batch fell back to serial quarantine."""
        if not self.degraded:
            _DEGRADED.inc()
        self.degraded = True

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready copy (the ``executor_stats`` currency)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "peak_residency_bytes": self.peak_residency_bytes,
            "retries": self.retries,
            "rebuilds": self.rebuilds,
            "degraded": self.degraded,
            "phases": {phase: dict(stats)
                       for phase, stats in self.phases.items()},
        }


def total_tasks(snapshot: Dict) -> int:
    """Total resolved tasks in an ``executor_stats`` snapshot — the
    one place the snapshot's phase/task shape is interpreted (the
    service smoke suite and benchmark gate "zero new tasks on cache
    hits" through this)."""
    return sum(phase.get("tasks", 0)
               for phase in (snapshot or {}).get("phases", {}).values())


def build_timings(snapshot: Optional[Dict],
                  level_stats: Optional[List] = None) -> Dict:
    """The ``timings`` currency: per-phase wall clock distilled from an
    ``executor_stats`` snapshot, plus optional per-level seconds.

    Serialized alongside ``executor_stats`` by every entry point
    (``DiscoveryResult.timings`` and the extension result mirrors) and
    round-tripped byte-identically through
    :mod:`repro.core.serialize`."""
    phases = {phase: float(stats.get("seconds", 0.0))
              for phase, stats in
              (snapshot or {}).get("phases", {}).items()}
    timings: Dict[str, object] = {"phases": phases}
    if level_stats is not None:
        timings["levels"] = [{"level": stats.level,
                              "seconds": stats.seconds}
                             for stats in level_stats]
    return timings
