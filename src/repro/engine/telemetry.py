"""Per-phase executor telemetry.

Every executor carries one :class:`ExecutorTelemetry` and records, per
planner phase (``products``, ``fd-check``, ``ocd-scan``, ``wave``,
``class-scan``, ...), how many typed tasks it resolved and whether each
batch ran on the coordinator or on the worker pool.  The snapshot is a
plain JSON-ready dict so every entry point can expose it uniformly —
``DiscoveryResult.executor_stats``, ``repro-od ... --json``, and the
validator/detector accessors all serve the same shape.
"""

from __future__ import annotations

from typing import Dict


class ExecutorTelemetry:
    """Counters for one executor's lifetime (cheap, always on)."""

    __slots__ = ("backend", "workers", "phases", "peak_residency_bytes",
                 "retries", "rebuilds", "degraded")

    def __init__(self, backend: str, workers: int):
        self.backend = backend
        self.workers = workers
        #: phase -> {"tasks", "serial_tasks", "pool_tasks", "dispatches"}
        self.phases: Dict[str, Dict[str, int]] = {}
        #: largest resident partition footprint observed (bytes); fed by
        #: the planner's per-level residency accounting
        self.peak_residency_bytes = 0
        #: crashed dispatches re-run after a pool rebuild (the
        #: fault-tolerance layer's currency: a recovered job reports
        #: ``retries >= 1`` instead of failing)
        self.retries = 0
        #: worker pools rebuilt after a crash/stall teardown
        self.rebuilds = 0
        #: True once a batch was quarantined to the serial path after
        #: repeated crashes (poison-task quarantine)
        self.degraded = False

    def record(self, phase: str, n_tasks: int, pooled: bool) -> None:
        """Bill one batch of ``n_tasks`` resolved tasks to ``phase``."""
        if n_tasks <= 0:
            return
        stats = self.phases.get(phase)
        if stats is None:
            stats = {"tasks": 0, "serial_tasks": 0, "pool_tasks": 0,
                     "dispatches": 0}
            self.phases[phase] = stats
        stats["tasks"] += n_tasks
        stats["pool_tasks" if pooled else "serial_tasks"] += n_tasks
        stats["dispatches"] += 1

    def observe_residency(self, n_bytes: int) -> None:
        if n_bytes > self.peak_residency_bytes:
            self.peak_residency_bytes = n_bytes

    def record_retry(self) -> None:
        """Bill one crashed dispatch that will be re-run."""
        self.retries += 1

    def record_rebuild(self) -> None:
        """Bill one pool rebuilt after a crash/stall teardown."""
        self.rebuilds += 1

    def mark_degraded(self) -> None:
        """Record that a batch fell back to serial quarantine."""
        self.degraded = True

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready copy (the ``executor_stats`` currency)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "peak_residency_bytes": self.peak_residency_bytes,
            "retries": self.retries,
            "rebuilds": self.rebuilds,
            "degraded": self.degraded,
            "phases": {phase: dict(stats)
                       for phase, stats in self.phases.items()},
        }


def total_tasks(snapshot: Dict) -> int:
    """Total resolved tasks in an ``executor_stats`` snapshot — the
    one place the snapshot's phase/task shape is interpreted (the
    service smoke suite and benchmark gate "zero new tasks on cache
    hits" through this)."""
    return sum(phase.get("tasks", 0)
               for phase in (snapshot or {}).get("phases", {}).values())
