"""Pluggable executors: where planner-emitted tasks actually run.

An :class:`Executor` resolves the typed work units of
:mod:`repro.engine.tasks` plus the two ad-hoc scan shapes the rest of
the library needs (mask-derived validations for the hybrid escalation
waves and bidirectional/pointwise sweeps; single class-sharded scans
for the validator/detector/incremental append paths).  Two
implementations ship:

* :class:`SerialExecutor` runs every kernel inline on the coordinator,
  consulting the :class:`~repro.engine.budget.DeadlineBudget` between
  tasks — the exact cadence the pre-engine serial fallbacks used.
* :class:`PoolExecutor` wraps a shared-memory
  :class:`~repro.parallel.WorkerPool` and keeps the historical
  serial-fallback policy in one place: a dispatch only leaves the
  coordinator when it has at least two tasks and enough grouped rows
  (or relation rows, for mask-derived validations) to amortize process
  dispatch.  Sub-threshold batches fall through to an internal
  :class:`SerialExecutor` that shares the same telemetry.

Every future backend (async, distributed) is a third implementation of
this protocol — not another traversal fork.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Optional, Protocol, Sequence, Tuple

import repro.parallel.pool as pool_module
from repro import kernels
from repro.engine.budget import DeadlineBudget
from repro.engine.tasks import ProductTask
from repro.engine.telemetry import ExecutorTelemetry
from repro.obs import events
from repro.parallel.pool import (PoolDispatchError, WorkerPool,
                                 resolve_workers)
from repro.partitions.cache import PartitionCache
from repro.partitions.partition import StrippedPartition
from repro.relation.encoding import EncodedRelation

#: Crashed dispatches tolerated per batch before the remaining tasks
#: are quarantined to the serial path: the first crash rebuilds the
#: pool and re-runs only unacknowledged tasks, a second crash on the
#: same batch stops trusting the pool with it (poison-task
#: quarantine — the serial kernels never touch the failure surface).
MAX_DISPATCH_CRASHES = 2

#: Capped exponential backoff between a crash and the rebuilt pool's
#: retry dispatch (seconds): base * 2^(crash-1), capped.
RETRY_BACKOFF_BASE = 0.05
RETRY_BACKOFF_CAP = 1.0

#: ``(key, context_key, mode, a, b)`` — a scan against a published
#: context partition.  Modes: ``"swap"``, ``"const"``, ``"swap_desc"``
#: (descending right column), ``"pointwise"`` (``a`` is an LHS bitmask,
#: ``b`` a target attribute; the context is ignored).
ScanTask = Tuple[Hashable, Hashable, str, int, int]

#: ``(key, context_mask, mode, a, b)`` — a scan whose context partition
#: the executor derives itself (worker-local caches on the pool path).
ValidationTask = Tuple[Hashable, int, str, int, int]


def _kernel_verdict(mode: str, columns, a: int, b: int,
                    context: Optional[StrippedPartition]) -> bool:
    """One scan verdict on the coordinator (lazy import: validation
    imports this package's siblings indirectly)."""
    from repro.core.validation import scan_verdict

    return scan_verdict(mode, columns, a, b, context)


class SerialExecutor:
    """Runs every task inline on the coordinator.

    ``kernel_backend`` pins the :mod:`repro.kernels` backend the task
    batches run under (``None`` defers to the process default /
    ``REPRO_KERNELS``); the executor activates it around every batch so
    one process can host executors on different backends.
    """

    name = "serial"

    def __init__(self, relation: EncodedRelation,
                 telemetry: Optional[ExecutorTelemetry] = None,
                 kernel_backend: Optional[str] = None):
        self._relation = relation
        self._cache: Optional[PartitionCache] = None
        self.kernel_backend = kernel_backend
        self.telemetry = telemetry or ExecutorTelemetry("serial", 1)

    @property
    def relation(self) -> EncodedRelation:
        return self._relation

    def rebase(self, relation: EncodedRelation) -> None:
        """Follow a grown relation (the incremental append path)."""
        if relation is self._relation:
            return
        self._relation = relation
        self._cache = None

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- task batches ---------------------------------------------------
    def run_products(self, parents: Dict[int, StrippedPartition],
                     tasks: Sequence[ProductTask],
                     budget: DeadlineBudget
                     ) -> Tuple[Dict[int, StrippedPartition], bool]:
        started = time.perf_counter()
        products: Dict[int, StrippedPartition] = {}
        with kernels.activate(self.kernel_backend):
            for task in tasks:
                if budget.hit():
                    self.telemetry.record(
                        "products", len(products), False,
                        time.perf_counter() - started)
                    return products, True
                products[task.child] = parents[task.left].product(
                    parents[task.right])
        self.telemetry.record("products", len(products), False,
                              time.perf_counter() - started)
        return products, False

    def run_scans(self, contexts: Dict[Hashable, StrippedPartition],
                  tasks: Sequence[ScanTask], budget: DeadlineBudget,
                  phase: str = "scans"
                  ) -> Tuple[Dict[Hashable, bool], bool]:
        started = time.perf_counter()
        columns = self._relation.ranks
        verdicts: Dict[Hashable, bool] = {}
        with kernels.activate(self.kernel_backend):
            for key, context_key, mode, a, b in tasks:
                if budget.hit():
                    self.telemetry.record(phase, len(verdicts), False,
                                          time.perf_counter() - started)
                    return verdicts, True
                verdicts[key] = _kernel_verdict(
                    mode, columns, a, b, contexts.get(context_key))
        self.telemetry.record(phase, len(verdicts), False,
                              time.perf_counter() - started)
        return verdicts, False

    def run_validations(self, tasks: Sequence[ValidationTask],
                        budget: DeadlineBudget, phase: str = "wave"
                        ) -> Tuple[Dict[Hashable, bool], bool]:
        started = time.perf_counter()
        if self._cache is None:
            self._cache = PartitionCache(self._relation)
        columns = self._relation.ranks
        verdicts: Dict[Hashable, bool] = {}
        with kernels.activate(self.kernel_backend):
            for key, mask, mode, a, b in tasks:
                if budget.hit():
                    self.telemetry.record(phase, len(verdicts), False,
                                          time.perf_counter() - started)
                    return verdicts, True
                context = (None if mode == "pointwise"
                           else self._cache.get(mask))
                verdicts[key] = _kernel_verdict(mode, columns, a, b,
                                                context)
        self.telemetry.record(phase, len(verdicts), False,
                              time.perf_counter() - started)
        return verdicts, False

    def scan_partition(self, mode: str, a: int, b: int,
                       partition: StrippedPartition) -> bool:
        """One whole-partition scan (validator/detector/incremental)."""
        started = time.perf_counter()
        with kernels.activate(self.kernel_backend):
            verdict = _kernel_verdict(mode, self._relation.ranks, a, b,
                                      partition)
        self.telemetry.record("class-scan", 1, False,
                              time.perf_counter() - started)
        return verdict


class PoolExecutor:
    """Shards big task batches over a shared-memory worker pool.

    The pool starts lazily on the first dispatch that crosses the
    serial-fallback thresholds; ``min_grouped_rows`` / ``min_rows``
    default to the package thresholds *read at dispatch time* (so tests
    and benchmarks can retune :mod:`repro.parallel.pool` globals).  An
    injected ``pool`` is reused and never shut down by :meth:`close`;
    an owned pool is torn down there (and rebuilt on the next dispatch
    after a crash-path shutdown).
    """

    name = "pool"

    def __init__(self, relation: EncodedRelation, workers: int,
                 pool: Optional[WorkerPool] = None,
                 min_grouped_rows: Optional[int] = None,
                 min_rows: Optional[int] = None,
                 stall_timeout: Optional[float] = None,
                 kernel_backend: Optional[str] = None):
        if workers < 2:
            raise ValueError("PoolExecutor needs workers >= 2; use "
                             "SerialExecutor for serial runs")
        self._relation = relation
        self.workers = workers
        self._injected = pool
        self._owned: Optional[WorkerPool] = None
        self._min_grouped_rows = min_grouped_rows
        self._min_rows = min_rows
        self.stall_timeout = stall_timeout
        #: kernels backend the batches (pooled chunks *and* the serial
        #: fallback) run under; ``None`` defers to the process default
        self.kernel_backend = kernel_backend
        self._rebuild_pending = False
        self.telemetry = ExecutorTelemetry("pool", workers)
        self._serial = SerialExecutor(relation, telemetry=self.telemetry,
                                      kernel_backend=kernel_backend)

    @property
    def relation(self) -> EncodedRelation:
        return self._relation

    @property
    def grouped_rows_threshold(self) -> int:
        if self._min_grouped_rows is not None:
            return self._min_grouped_rows
        return pool_module.PARALLEL_MIN_GROUPED_ROWS

    @property
    def rows_threshold(self) -> int:
        if self._min_rows is not None:
            return self._min_rows
        return pool_module.PARALLEL_MIN_ROWS

    def rebase(self, relation: EncodedRelation) -> None:
        if relation is self._relation:
            return
        self._relation = relation
        self._serial.rebase(relation)
        if self._injected is not None and not self._injected.closed:
            self._injected.rebase(relation)
        if self._owned is not None and not self._owned.closed:
            self._owned.rebase(relation)

    def close(self) -> None:
        """Shut down the owned pool, if one was started; injected pools
        belong to the caller."""
        if self._owned is not None:
            self._owned.shutdown()
            self._owned = None

    def __enter__(self) -> "PoolExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _pool(self) -> WorkerPool:
        if self._injected is not None:
            return self._injected
        if self._owned is not None and self._owned.closed:
            self._owned = None          # crashed earlier: rebuild
            self._rebuild_pending = True
        if self._owned is None:
            self._owned = WorkerPool(self._relation, self.workers,
                                     stall_timeout=self.stall_timeout,
                                     kernel_backend=self.kernel_backend)
            if self._rebuild_pending:
                self.telemetry.record_rebuild()
                self._rebuild_pending = False
        return self._owned

    # -- crash recovery -------------------------------------------------
    def _recover(self, crashes: int, will_retry: bool) -> None:
        """Account for one crashed dispatch and prepare the retry.

        A crashed owned pool tore itself down already (``closed``);
        :meth:`_pool` rebuilds it on the next dispatch.  A crashed
        *injected* pool belongs to the caller but is equally unusable,
        so it is dropped here and replaced by an owned rebuild.  The
        backoff sleep only happens when another pool attempt follows —
        quarantined batches go serial immediately.
        """
        self.telemetry.record_retry()
        # one structured line per crashed dispatch; emitted inside the
        # job's span context, so it carries trace_id/span_id and joins
        # against /jobs/{id}/trace
        events.emit("executor.dispatch_crashed", crashes=crashes,
                    retry=will_retry, workers=self.workers)
        if self._injected is not None and self._injected.closed:
            self._injected = None
            self._rebuild_pending = True
        if will_retry:
            time.sleep(min(RETRY_BACKOFF_BASE * (2 ** (crashes - 1)),
                           RETRY_BACKOFF_CAP))

    @staticmethod
    def _harvest(error: PoolDispatchError) -> Dict[Hashable, bool]:
        """Verdicts acknowledged before the crash (partial results ride
        the result queue; product outputs live in the torn-down shm
        block, so product batches re-run whole and harvest nothing)."""
        verdicts: Dict[Hashable, bool] = {}
        for payload in error.partial_results:
            for key, verdict in payload.get("verdicts", ()):
                verdicts[key] = verdict
        return verdicts

    # -- task batches ---------------------------------------------------
    def run_products(self, parents: Dict[int, StrippedPartition],
                     tasks: Sequence[ProductTask],
                     budget: DeadlineBudget
                     ) -> Tuple[Dict[int, StrippedPartition], bool]:
        grouped_rows = sum(len(p.rows) for p in parents.values())
        if len(tasks) < 2 or grouped_rows < self.grouped_rows_threshold:
            return self._serial.run_products(parents, tasks, budget)
        triples = [(t.child, t.left, t.right) for t in tasks]
        started = time.perf_counter()
        crashes = 0
        while crashes < MAX_DISPATCH_CRASHES:
            try:
                with kernels.activate(self.kernel_backend):
                    products, timed_out = self._pool().run_products(
                        parents, triples, budget.deadline)
                self.telemetry.record("products", len(products), True,
                                      time.perf_counter() - started)
                return products, timed_out
            except PoolDispatchError:
                crashes += 1
                self._recover(crashes, crashes < MAX_DISPATCH_CRASHES)
        self.telemetry.mark_degraded()
        return self._serial.run_products(parents, tasks, budget)

    def run_scans(self, contexts: Dict[Hashable, StrippedPartition],
                  tasks: Sequence[ScanTask], budget: DeadlineBudget,
                  phase: str = "scans"
                  ) -> Tuple[Dict[Hashable, bool], bool]:
        grouped_rows = sum(len(p.rows) for p in contexts.values())
        if len(tasks) < 2 or grouped_rows < self.grouped_rows_threshold:
            return self._serial.run_scans(contexts, tasks, budget, phase)
        verdicts: Dict[Hashable, bool] = {}
        remaining = list(tasks)
        started = time.perf_counter()
        crashes = 0
        timed_out = False
        while remaining and crashes < MAX_DISPATCH_CRASHES:
            try:
                with kernels.activate(self.kernel_backend):
                    got, timed_out = self._pool().run_scans(
                        contexts, remaining, budget.deadline)
                verdicts.update(got)
                self.telemetry.record(phase, len(verdicts), True,
                                      time.perf_counter() - started)
                return verdicts, timed_out
            except PoolDispatchError as error:
                verdicts.update(self._harvest(error))
                remaining = [t for t in remaining if t[0] not in verdicts]
                crashes += 1
                self._recover(crashes,
                              bool(remaining)
                              and crashes < MAX_DISPATCH_CRASHES)
        self.telemetry.record(phase, len(verdicts), True,
                              time.perf_counter() - started)
        if remaining:
            self.telemetry.mark_degraded()
            serial_verdicts, timed_out = self._serial.run_scans(
                contexts, remaining, budget, phase)
            verdicts.update(serial_verdicts)
        return verdicts, timed_out

    def run_validations(self, tasks: Sequence[ValidationTask],
                        budget: DeadlineBudget, phase: str = "wave"
                        ) -> Tuple[Dict[Hashable, bool], bool]:
        if (len(tasks) < 2
                or self._relation.n_rows < self.rows_threshold):
            return self._serial.run_validations(tasks, budget, phase)
        verdicts: Dict[Hashable, bool] = {}
        remaining = list(tasks)
        started = time.perf_counter()
        crashes = 0
        timed_out = False
        while remaining and crashes < MAX_DISPATCH_CRASHES:
            try:
                with kernels.activate(self.kernel_backend):
                    got, timed_out = self._pool().run_validations(
                        remaining, budget.deadline)
                verdicts.update(got)
                self.telemetry.record(phase, len(verdicts), True,
                                      time.perf_counter() - started)
                return verdicts, timed_out
            except PoolDispatchError as error:
                verdicts.update(self._harvest(error))
                remaining = [t for t in remaining if t[0] not in verdicts]
                crashes += 1
                self._recover(crashes,
                              bool(remaining)
                              and crashes < MAX_DISPATCH_CRASHES)
        self.telemetry.record(phase, len(verdicts), True,
                              time.perf_counter() - started)
        if remaining:
            self.telemetry.mark_degraded()
            serial_verdicts, timed_out = self._serial.run_validations(
                remaining, budget, phase)
            verdicts.update(serial_verdicts)
        return verdicts, timed_out

    def scan_partition(self, mode: str, a: int, b: int,
                       partition: StrippedPartition) -> bool:
        if (partition.n_classes < 2
                or len(partition.rows) < self.grouped_rows_threshold
                or mode == "pointwise"):
            return self._serial.scan_partition(mode, a, b, partition)
        started = time.perf_counter()
        crashes = 0
        while crashes < MAX_DISPATCH_CRASHES:
            try:
                with kernels.activate(self.kernel_backend):
                    verdict, _ = self._pool().run_class_scan(
                        mode, a, b, partition)
                self.telemetry.record("class-scan", 1, True,
                                      time.perf_counter() - started)
                return verdict
            except PoolDispatchError:
                crashes += 1
                self._recover(crashes, crashes < MAX_DISPATCH_CRASHES)
        self.telemetry.mark_degraded()
        return self._serial.scan_partition(mode, a, b, partition)


class Executor(Protocol):
    """The executor contract planners and backends program to.

    Structural (``typing.Protocol``): :class:`SerialExecutor` and
    :class:`PoolExecutor` satisfy it without inheriting, and a future
    backend (async, distributed) only needs these methods."""

    telemetry: ExecutorTelemetry

    @property
    def relation(self) -> EncodedRelation: ...

    def run_products(self, parents: Dict[int, StrippedPartition],
                     tasks: Sequence[ProductTask],
                     budget: DeadlineBudget
                     ) -> Tuple[Dict[int, StrippedPartition], bool]: ...

    def run_scans(self, contexts: Dict[Hashable, StrippedPartition],
                  tasks: Sequence[ScanTask], budget: DeadlineBudget,
                  phase: str = "scans"
                  ) -> Tuple[Dict[Hashable, bool], bool]: ...

    def run_validations(self, tasks: Sequence[ValidationTask],
                        budget: DeadlineBudget, phase: str = "wave"
                        ) -> Tuple[Dict[Hashable, bool], bool]: ...

    def scan_partition(self, mode: str, a: int, b: int,
                       partition: StrippedPartition) -> bool: ...

    def rebase(self, relation: EncodedRelation) -> None: ...

    def close(self) -> None: ...


def make_executor(relation: EncodedRelation,
                  workers: Optional[int] = None,
                  pool: Optional[WorkerPool] = None,
                  min_grouped_rows: Optional[int] = None,
                  min_rows: Optional[int] = None,
                  stall_timeout: Optional[float] = None,
                  kernel_backend: Optional[str] = None):
    """The one place the serial-vs-pool decision is made.

    An explicit ``workers`` wins (the benchmark's projection mode
    drives 4-worker sharding through an injected 1-process pool);
    otherwise an injected pool sets the effective parallelism;
    otherwise ``REPRO_WORKERS`` / serial via
    :func:`repro.parallel.resolve_workers`.  Fewer than two effective
    workers yields a :class:`SerialExecutor` even when a pool was
    injected — mirroring the historical ``FastOD`` gate.

    ``kernel_backend`` picks the :mod:`repro.kernels` backend the
    executor's batches run under (threaded to pool workers through the
    task payloads); ``None`` defers to ``REPRO_KERNELS``/auto.
    """
    if workers is None and pool is not None:
        effective = pool.workers
    else:
        effective = resolve_workers(workers)
    if effective < 2:
        return SerialExecutor(relation, kernel_backend=kernel_backend)
    return PoolExecutor(relation, effective, pool=pool,
                        min_grouped_rows=min_grouped_rows,
                        min_rows=min_rows,
                        stall_timeout=stall_timeout,
                        kernel_backend=kernel_backend)


__all__ = [
    "Executor",
    "PoolExecutor",
    "ScanTask",
    "SerialExecutor",
    "ValidationTask",
    "make_executor",
]
