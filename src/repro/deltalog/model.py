"""Weighted (Z-set) row deltas over a relation.

A :class:`DeltaBatch` is an ordered list of ``(weight, row)`` ops with
weight ``+1`` (insert) or ``-1`` (delete); an update is its ``-old``
``+new`` decomposition.  The model is the DBSP/Z-set view of change:
one vocabulary expresses appends, retractions, and updates, so a
single LSN-prefixed log of batches can serve as the incremental
engine's input, the crash-recovery WAL, and a replication stream.

Application semantics are **deterministic and order-sensitive** — the
engine applying a batch live and a restarted process replaying the
same batch from the log must produce byte-identical row sequences
(content fingerprints hash rank columns in row order):

* ops apply in list order against the pre-batch relation plus the
  batch's own pending inserts;
* a delete consumes the *first* still-live occurrence of its row value
  in the pre-batch relation;
* a delete with no live base occurrence cancels the *most recent*
  pending insert of the same value in this batch (Z-set cancellation:
  ``+r`` then ``-r`` is a no-op);
* a delete matching neither raises :class:`~repro.errors.DataError` —
  weights in this model never go below the relation's multiset;
* surviving inserts append at the end of the relation, in op order.

Value equality is Python equality (so ``1`` and ``1.0`` match, as they
do in a dict); values must be hashable scalars so rows can be indexed
and survive the log's JSON round-trip.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import DataError
from repro.relation.table import Relation

#: one delta op: (+1 | -1, row values)
DeltaOp = Tuple[int, tuple]


def _normalize_row(row: Sequence, arity: Optional[int]) -> tuple:
    if isinstance(row, (str, bytes)) or not isinstance(
            row, (list, tuple)):
        raise DataError(
            f"a delta row must be a list/tuple of values, got {row!r}")
    values = tuple(row)
    if arity is not None and len(values) != arity:
        raise DataError(
            f"delta row {values!r} has {len(values)} values; "
            f"the relation has {arity} attributes")
    try:
        hash(values)
    except TypeError:
        raise DataError(
            f"delta row {values!r} contains unhashable values; "
            "rows must hold scalar values") from None
    return values


class DeltaBatch:
    """An ordered batch of weighted row ops.

    >>> batch = DeltaBatch.updates([((1, 2), (1, 3))])
    >>> batch.ops
    [(-1, (1, 2)), (1, (1, 3))]
    >>> batch.net_row_delta
    0
    """

    __slots__ = ("ops",)

    def __init__(self, ops: Iterable[DeltaOp],
                 arity: Optional[int] = None):
        normalized: List[DeltaOp] = []
        for op in ops:
            try:
                weight, row = op
            except (TypeError, ValueError):
                raise DataError(
                    f"a delta op must be a (weight, row) pair, "
                    f"got {op!r}") from None
            weight = int(weight)
            if weight not in (1, -1):
                raise DataError(
                    f"delta weights must be +1 or -1, got {weight}")
            normalized.append((weight, _normalize_row(row, arity)))
        self.ops = normalized

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def inserts(cls, rows: Iterable[Sequence],
                arity: Optional[int] = None) -> "DeltaBatch":
        return cls([(1, row) for row in rows], arity=arity)

    @classmethod
    def deletes(cls, rows: Iterable[Sequence],
                arity: Optional[int] = None) -> "DeltaBatch":
        return cls([(-1, row) for row in rows], arity=arity)

    @classmethod
    def updates(cls, pairs: Iterable[Sequence],
                arity: Optional[int] = None) -> "DeltaBatch":
        """``(old_row, new_row)`` pairs, each decomposed ``-old +new``."""
        ops: List[Tuple[int, Sequence]] = []
        for pair in pairs:
            try:
                old, new = pair
            except (TypeError, ValueError):
                raise DataError(
                    f"an update must be an (old_row, new_row) pair, "
                    f"got {pair!r}") from None
            ops.append((-1, old))
            ops.append((1, new))
        return cls(ops, arity=arity)

    @classmethod
    def from_request(cls, body: Dict,
                     arity: Optional[int] = None) -> "DeltaBatch":
        """Build a batch from a request/params dict.

        Accepts an explicit ``ops`` list (``[[weight, row], ...]``,
        applied verbatim) and/or the convenience lists ``deletes``,
        ``updates`` (``[[old, new], ...]``), and ``inserts`` — folded
        in that order, matching the common read-modify-append flow.
        """
        ops: List[DeltaOp] = []
        explicit = body.get("ops")
        if explicit is not None:
            if not isinstance(explicit, (list, tuple)):
                raise DataError("'ops' must be a list of [weight, row]")
            ops.extend(cls(explicit, arity=arity).ops)
        if body.get("deletes"):
            ops.extend(cls.deletes(body["deletes"], arity=arity).ops)
        if body.get("updates"):
            ops.extend(cls.updates(body["updates"], arity=arity).ops)
        if body.get("inserts"):
            ops.extend(cls.inserts(body["inserts"], arity=arity).ops)
        if not ops:
            raise DataError(
                "a delta needs at least one of 'ops', 'inserts', "
                "'deletes', or 'updates'")
        batch = cls.__new__(cls)
        batch.ops = ops
        return batch

    @classmethod
    def from_dict(cls, payload: Dict,
                  arity: Optional[int] = None) -> "DeltaBatch":
        return cls(payload.get("ops") or (), arity=arity)

    def to_dict(self) -> Dict[str, object]:
        return {"ops": [[weight, list(row)] for weight, row in self.ops]}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    @property
    def n_inserts(self) -> int:
        return sum(1 for weight, _ in self.ops if weight > 0)

    @property
    def n_deletes(self) -> int:
        return sum(1 for weight, _ in self.ops if weight < 0)

    @property
    def net_row_delta(self) -> int:
        """How many rows the relation grows (or shrinks) by."""
        return sum(weight for weight, _ in self.ops)

    def __repr__(self) -> str:
        return (f"DeltaBatch(+{self.n_inserts}/-{self.n_deletes} "
                f"over {len(self.ops)} ops)")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, DeltaBatch)
                and self.ops == other.ops)

    __hash__ = None  # ordered and mutable by construction

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def split(self, relation: Relation
              ) -> Tuple[List[int], List[tuple]]:
        """Resolve this batch against ``relation``: the sorted row
        indices to drop and the surviving insert rows, in op order.

        This is the single code path deciding *which* occurrence a
        delete removes — the live engine and boot-time replay both go
        through it, which is what makes replayed fingerprints
        byte-identical to never-crashed ones.
        """
        arity = relation.arity
        delete_indices: List[int] = []
        pending: List[tuple] = []
        index: Optional[Dict[tuple, List[int]]] = None
        heads: Dict[tuple, int] = {}
        targets = {row for weight, row in self.ops if weight < 0}
        for weight, row in self.ops:
            if len(row) != arity:
                raise DataError(
                    f"delta row {row!r} has {len(row)} values; "
                    f"the relation has {arity} attributes")
            if weight > 0:
                pending.append(row)
                continue
            if index is None:
                # index only the deleted row-values: the relation scan
                # is unavoidable, but keeping non-targets out of the
                # dict makes it a membership probe per row
                index = {}
                columns = [relation.column_at(i) for i in range(arity)]
                for position, existing in enumerate(zip(*columns)):
                    if existing in targets:
                        index.setdefault(existing, []).append(position)
            positions = index.get(row)
            head = heads.get(row, 0)
            if positions is not None and head < len(positions):
                delete_indices.append(positions[head])
                heads[row] = head + 1
                continue
            for i in range(len(pending) - 1, -1, -1):
                if pending[i] == row:
                    del pending[i]
                    break
            else:
                raise DataError(
                    f"delta deletes row {row!r}, which has no "
                    "remaining occurrence in the relation or this "
                    "batch's inserts")
        delete_indices.sort()
        return delete_indices, pending

    def apply_to(self, relation: Relation) -> Relation:
        """The relation after this batch (pure; no engine state)."""
        deletes, inserts = self.split(relation)
        out = relation
        if deletes:
            out = out.drop_rows(deletes)
        if inserts:
            out = out.append_rows(inserts)
        return out


def replay_relation(relation: Relation,
                    batches: Iterable[DeltaBatch]) -> Relation:
    """Fold many batches over ``relation`` without materializing the
    intermediate relations.

    Semantically identical to ``for b in batches: relation =
    b.apply_to(relation)`` (the property tests assert it), but a
    boot-time replay of thousands of logged batches runs in one pass:
    rows live in a tombstoned list with a per-value FIFO position
    index, and the final relation is built once at the end.
    """
    rows: List[tuple] = list(relation.rows())
    alive: List[bool] = [True] * len(rows)
    index: Dict[tuple, List[int]] = {}
    heads: Dict[tuple, int] = {}
    for position, row in enumerate(rows):
        index.setdefault(row, []).append(position)
    arity = relation.arity
    for batch in batches:
        pending: List[tuple] = []
        for weight, row in batch.ops:
            if len(row) != arity:
                raise DataError(
                    f"delta row {row!r} has {len(row)} values; "
                    f"the relation has {arity} attributes")
            if weight > 0:
                pending.append(row)
                continue
            positions = index.get(row)
            head = heads.get(row, 0)
            if positions is not None and head < len(positions):
                alive[positions[head]] = False
                heads[row] = head + 1
                continue
            for i in range(len(pending) - 1, -1, -1):
                if pending[i] == row:
                    del pending[i]
                    break
            else:
                raise DataError(
                    f"delta deletes row {row!r}, which has no "
                    "remaining occurrence in the relation or this "
                    "batch's inserts")
        for row in pending:
            index.setdefault(row, []).append(len(rows))
            rows.append(row)
            alive.append(True)
    return Relation.from_rows(
        relation.names,
        [row for row, live in zip(rows, alive) if live])


__all__ = ["DeltaBatch", "DeltaOp", "replay_relation"]
