"""The per-dataset delta WAL: an append-only, replayable Z-set log.

One :class:`DeltaLog` file per registered dataset (keyed by the
dataset's *root* fingerprint — the content hash at first registration,
stable across re-keying).  Every record is one
:class:`~repro.deltalog.model.DeltaBatch` plus the content
fingerprints before/after it applied, under the shared record
discipline of :mod:`repro.deltalog.records`: LSN-prefixed,
CRC-guarded, one ``write`` + ``flush`` + ``fsync`` per record, clean
prefix trusted on reopen, torn tail truncated before the next append.

The same log is three things at once (the DBSP/Z-set unified-WAL
shape): the incremental engine's input stream, the crash-recovery WAL
(boot replays it over the spooled registration to rebuild warm
catalog state), and — because any clean prefix replays to a
consistent snapshot whose fingerprint the record carries — a
replication/verification stream.

Discipline: the scheduler appends a delta *before* applying it.  Once
the fsync returns, the delta happened — a crash between append and
apply is repaired at boot by replay, never lost.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Union

from repro import faults
from repro.deltalog.model import DeltaBatch
from repro.deltalog.records import (
    encode_record,
    read_records,
    trusted_length,
)
from repro.errors import ReproError
from repro.obs import metrics, trace

_APPENDS = metrics.counter(
    "repro_deltalog_appends_total",
    "Delta batches durably appended to dataset WALs")
_APPEND_OPS = metrics.counter(
    "repro_deltalog_ops_total",
    "Weighted row ops durably appended, by sign",
    ("sign",))
_FSYNC_SECONDS = metrics.histogram(
    "repro_deltalog_fsync_seconds",
    "Wall-clock seconds per delta append's write+flush+fsync")
_REPLAYED = metrics.counter(
    "repro_deltalog_replayed_batches_total",
    "Delta batches read back during log replay")
_TRUNCATIONS = metrics.counter(
    "repro_deltalog_truncations_total",
    "Torn delta-log tails truncated on reopen")
_ERRORS = metrics.counter(
    "repro_deltalog_errors_total",
    "Delta-log appends that failed (I/O or injected fault)")

#: where a service's per-dataset logs live under ``--journal-dir``
DELTALOG_DIRNAME = "deltalog"


class DeltaLogError(ReproError):
    """An unusable delta log or an append/replay that failed."""


class DeltaRecord(NamedTuple):
    """One replayed log entry."""

    lsn: int
    batch: DeltaBatch
    fp_before: Optional[str]
    fp_after: Optional[str]


def delta_log_path(directory: Union[str, Path],
                   root_fingerprint: str) -> Path:
    """The log file for one dataset under a journal directory."""
    return Path(directory) / DELTALOG_DIRNAME / f"{root_fingerprint}.log"


def read_delta_log(path: Union[str, Path]) -> List[DeltaRecord]:
    """Replay the clean prefix of one delta log (read-only).

    A missing file is an empty history.  Records that do not parse as
    delta batches end the trusted prefix, same as a torn line would.
    Raises :class:`DeltaLogError` only from the armed
    ``deltalog.replay`` fault site — corruption is never an exception,
    it is a shorter history.
    """
    faults.maybe_raise("deltalog.replay",
                       f"delta-log replay failed for {path}",
                       exc_type=DeltaLogError)
    out: List[DeltaRecord] = []
    with trace.span("deltalog.replay", path=str(path)):
        for record in read_records(path):
            if record.get("type") != "delta":
                break
            try:
                batch = DeltaBatch.from_dict(record)
            except ReproError:
                break
            out.append(DeltaRecord(
                lsn=record["lsn"], batch=batch,
                fp_before=record.get("fp_before"),
                fp_after=record.get("fp_after")))
    _REPLAYED.inc(len(out))
    return out


class DeltaLog:
    """Appender handle over one dataset's delta WAL.

    Opening scans the existing file, trusts the clean prefix, and
    truncates any torn tail so the LSN sequence continues exactly
    where the last durable record stopped.  Appends are serialised by
    a lock and fsync'd one record at a time.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise DeltaLogError(
                f"cannot create delta-log directory "
                f"{self.path.parent}: {error}") from error
        records = read_records(self.path)
        self._lsn = records[-1]["lsn"] if records else 0
        trusted = trusted_length(records)
        self._handle = open(self.path, "ab")
        if self._handle.tell() > trusted:
            self._handle.truncate(trusted)
            self._handle.seek(trusted)
            _TRUNCATIONS.inc()
        self._lock = threading.Lock()
        self._closed = False

    @property
    def last_lsn(self) -> int:
        return self._lsn

    def append(self, batch: DeltaBatch,
               fp_before: Optional[str] = None,
               fp_after: Optional[str] = None) -> int:
        """Durably append one batch; returns its LSN.

        The fault site fires *before* anything is written, so an
        injected failure leaves the log exactly at its previous LSN —
        the job fails, nothing replays.
        """
        payload: Dict[str, object] = {"type": "delta", **batch.to_dict()}
        if fp_before is not None:
            payload["fp_before"] = fp_before
        if fp_after is not None:
            payload["fp_after"] = fp_after
        with self._lock:
            if self._closed:
                raise DeltaLogError(
                    f"delta log {self.path} is closed")
            try:
                faults.maybe_raise(
                    "deltalog.append",
                    f"delta append failed for {self.path}",
                    exc_type=DeltaLogError)
                encoded = encode_record(self._lsn + 1, payload)
            except (TypeError, ValueError) as error:
                _ERRORS.inc()
                raise DeltaLogError(
                    f"delta batch is not JSON-serializable: "
                    f"{error}") from error
            except DeltaLogError:
                _ERRORS.inc()
                raise
            started = time.perf_counter()
            with trace.span("deltalog.append", lsn=self._lsn + 1,
                            ops=len(batch)):
                try:
                    self._handle.write(encoded)
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                except OSError as error:
                    _ERRORS.inc()
                    raise DeltaLogError(
                        f"delta append failed: {error}") from error
            self._lsn += 1
            _FSYNC_SECONDS.observe(time.perf_counter() - started)
            _APPENDS.inc()
            _APPEND_OPS.inc(batch.n_inserts, sign="insert")
            _APPEND_OPS.inc(batch.n_deletes, sign="delete")
            return self._lsn

    def records(self) -> List[DeltaRecord]:
        """Replay this log's current clean prefix (for verification)."""
        with self._lock:
            self._handle.flush()
        return read_delta_log(self.path)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError:  # pragma: no cover - yanked volume
                pass
            self._handle.close()

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = [
    "DELTALOG_DIRNAME",
    "DeltaLog",
    "DeltaLogError",
    "DeltaRecord",
    "delta_log_path",
    "read_delta_log",
]
