"""Z-set deltas and the durable, replayable delta WAL.

* :mod:`repro.deltalog.model` — weighted ``(+1 | -1, row)`` batches
  (:class:`DeltaBatch`) with deterministic application semantics, and
  :func:`replay_relation` for folding a logged history in one pass;
* :mod:`repro.deltalog.log` — the per-dataset append-only
  :class:`DeltaLog` (LSN-prefixed, CRC-checked, fsync'd; torn tails
  truncated on reopen);
* :mod:`repro.deltalog.records` — the line-level record primitives
  shared with the job journal.
"""

from repro.deltalog.log import (
    DELTALOG_DIRNAME,
    DeltaLog,
    DeltaLogError,
    DeltaRecord,
    delta_log_path,
    read_delta_log,
)
from repro.deltalog.model import DeltaBatch, DeltaOp, replay_relation
from repro.deltalog.records import (
    encode_record,
    read_records,
    trusted_length,
)

__all__ = [
    "DELTALOG_DIRNAME",
    "DeltaBatch",
    "DeltaLog",
    "DeltaLogError",
    "DeltaOp",
    "DeltaRecord",
    "delta_log_path",
    "encode_record",
    "read_delta_log",
    "read_records",
    "replay_relation",
    "trusted_length",
]
