"""The WAL record primitives every durable log in the tree shares.

One record per line::

    <lsn> <crc32:08x> <canonical json>\n

The CRC covers the JSON payload bytes, the LSN is a strictly
increasing sequence number starting at 1.  Reading accepts any *clean
prefix*: the first torn, corrupt, or out-of-sequence line ends the
useful log (everything before it is trusted, everything after is
ignored) — exactly the contract a crashed appender can guarantee,
since a record is written with one ``write`` + ``fsync`` and only the
final line can ever be torn.

Both durable logs — the job journal (:mod:`repro.server.journal`) and
the per-dataset delta WAL (:mod:`repro.deltalog.log`) — are built on
these two functions, so the torn-write fuzz tests exercise one record
discipline, not two diverging copies.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, List, Union


def encode_record(lsn: int, payload: Dict) -> bytes:
    """One canonical log line for ``payload`` at sequence ``lsn``."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%d %08x %s\n" % (lsn, crc, body)


def read_records(path: Union[str, Path]) -> List[Dict]:
    """Every trusted record in ``path``, in LSN order.

    Stops at the first torn/corrupt/out-of-sequence line — the clean
    prefix is the log's truth.  A missing file is an empty log.  Each
    returned payload carries its ``lsn``.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: List[Dict] = []
    expected_lsn = 1
    with path.open("rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                break                       # torn tail (crashed writer)
            parts = raw.rstrip(b"\n").split(b" ", 2)
            if len(parts) != 3:
                break
            try:
                lsn = int(parts[0])
                crc = int(parts[1], 16)
            except ValueError:
                break
            if lsn != expected_lsn:
                break
            if zlib.crc32(parts[2]) & 0xFFFFFFFF != crc:
                break
            try:
                payload = json.loads(parts[2].decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                break
            if not isinstance(payload, dict):
                break
            payload["lsn"] = lsn
            records.append(payload)
            expected_lsn += 1
    return records


def trusted_length(records: List[Dict]) -> int:
    """Byte length of the clean prefix ``records`` came from — what a
    reopening appender truncates the file to before writing."""
    return sum(len(encode_record(record["lsn"],
                                 {k: v for k, v in record.items()
                                  if k != "lsn"}))
               for record in records)


__all__ = ["encode_record", "read_records", "trusted_length"]
