"""Zero-copy columnar ingest: aligned arenas for rank columns.

The discovery engine's bulk input is a handful of ``int64`` rank
columns.  Historically each consumer laid them out for itself: the
encoder produced one heap array per column, and every
:class:`repro.parallel.pool.WorkerPool` then re-copied all of them into
a fresh shared-memory block.  A :class:`ColumnArena` builds the columns
once into a single contiguous, 64-byte-aligned buffer whose layout is
the pool's block descriptor format verbatim — so a shared-memory arena
is published to workers *as is* (the worker-side
:class:`repro.parallel.shm.BlockReader` attaches by name and reads the
same ``{key: (offset_items, length)}`` layout), and two pools over the
same relation share one segment instead of copying twice.

Backings:

* ``"heap"`` — one over-aligned heap allocation (the default ingest
  target; kernels like 64-byte alignment for vector loads).
* ``"mmap"`` — an anonymous memory map, page-aligned by construction;
  lets the OS lazily back and reclaim large ingests.
* ``"shm"`` — a named ``multiprocessing.shared_memory`` segment, the
  publishable form.

Shared arenas are **reference counted**, not relation-lifetime: every
adopting pool calls :meth:`ColumnArena.acquire` and must
:meth:`ColumnArena.release`; the segment is unlinked exactly once, when
the count returns to zero.  (The chaos suite asserts ``/dev/shm`` is
clean after every test — a relation-lifetime segment held by a
module-scoped fixture would trip it.)  A closed arena stays closed;
:meth:`repro.relation.encoding.EncodedRelation.shared_arena` builds a
fresh one on the next adoption.

Arrow interop (``pyarrow`` is optional and absent from the minimal
install) is gated behind :func:`arrow_available`; when present,
:func:`columns_from_arrow` turns a table's columns into the raw value
sequences the encoder consumes without an intermediate pandas hop.
"""

from __future__ import annotations

import mmap as _mmap
import os
import threading
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

#: Alignment of every column start, in bytes and in int64 items.
ALIGN_BYTES = 64
ITEM_BYTES = np.dtype(np.int64).itemsize
ALIGN_ITEMS = ALIGN_BYTES // ITEM_BYTES

#: ``(segment name, layout, n_rows, arity)`` — identical to the worker
#: pool's columns descriptor, so workers need no arena-specific code.
ArenaDescriptor = Tuple[str, Dict[Hashable, Tuple[int, int]], int, int]

BACKINGS = ("heap", "mmap", "shm")


def _aligned_layout(arrays: Dict[Hashable, np.ndarray]
                    ) -> Tuple[Dict[Hashable, Tuple[int, int]], int]:
    """``{key: (offset_items, length)}`` with every offset a multiple
    of :data:`ALIGN_ITEMS`, plus the total capacity in items."""
    layout: Dict[Hashable, Tuple[int, int]] = {}
    total = 0
    for key, array in arrays.items():
        layout[key] = (total, len(array))
        used = total + len(array)
        total = -(-used // ALIGN_ITEMS) * ALIGN_ITEMS
    return layout, total


def _heap_buffer(total_items: int) -> Tuple[np.ndarray, object]:
    """A 64-byte-aligned int64 heap buffer (NumPy only guarantees
    16-byte alignment, so over-allocate and slice to an aligned
    start).  Returns ``(view, keepalive)``."""
    raw = np.empty(total_items * ITEM_BYTES + ALIGN_BYTES, dtype=np.uint8)
    start = (-raw.ctypes.data) % ALIGN_BYTES
    view = raw[start:start + total_items * ITEM_BYTES].view(np.int64)
    return view, raw


class ColumnArena:
    """One aligned buffer holding named ``int64`` columns.

    Build with :meth:`build`; read columns back as zero-copy views via
    :meth:`column`.  Shared-memory arenas additionally carry a
    :attr:`name` and :meth:`descriptor` and are reference counted (see
    the module docstring for the ownership protocol).
    """

    __slots__ = ("layout", "n_rows", "arity", "backing", "name",
                 "_buffer", "_segment", "_map", "_keepalive", "_refs",
                 "_lock", "_closed", "_owner_pid")

    def __init__(self, layout: Dict[Hashable, Tuple[int, int]],
                 n_rows: int, arity: int, backing: str, buffer,
                 segment=None, mapping=None, keepalive=None):
        self.layout = layout
        self.n_rows = n_rows
        self.arity = arity
        self.backing = backing
        self.name: Optional[str] = (
            segment.name if segment is not None else None)
        self._buffer = buffer
        self._segment = segment
        self._map = mapping
        self._keepalive = keepalive
        self._refs = 0
        self._lock = threading.Lock()
        self._closed = False
        self._owner_pid = os.getpid()

    @classmethod
    def build(cls, arrays: Dict[Hashable, np.ndarray], n_rows: int,
              backing: str = "heap") -> "ColumnArena":
        """Copy ``arrays`` (one memcpy each) into a fresh arena."""
        if backing not in BACKINGS:
            raise ValueError(
                f"unknown arena backing {backing!r}; expected one of "
                f"{BACKINGS}")
        layout, total_items = _aligned_layout(arrays)
        segment = mapping = keepalive = None
        if backing == "heap":
            buffer, keepalive = _heap_buffer(total_items)
        elif backing == "mmap":
            mapping = _mmap.mmap(-1, max(total_items * ITEM_BYTES, 1))
            buffer = np.frombuffer(mapping, dtype=np.int64,
                                   count=total_items)
        else:
            # late import: repro.parallel owns the resource-tracker
            # hygiene (attach suppression, creation lock) and must not
            # be imported at kernels-package import time
            from multiprocessing import shared_memory

            from repro.parallel import shm as shm_module

            with shm_module._TRACKER_LOCK:
                segment = shared_memory.SharedMemory(
                    create=True,
                    size=max(total_items * ITEM_BYTES, 1))
            buffer = np.frombuffer(segment.buf, dtype=np.int64,
                                   count=total_items)
        arena = cls(layout, n_rows, arity=len(arrays), backing=backing,
                    buffer=buffer, segment=segment, mapping=mapping,
                    keepalive=keepalive)
        for key, array in arrays.items():
            if len(array):
                arena.column(key)[:] = array
        return arena

    # -- views ---------------------------------------------------------
    def column(self, key: Hashable) -> np.ndarray:
        """A zero-copy view over one named column."""
        if self._closed:
            raise ValueError("arena is closed")
        offset, length = self.layout[key]
        return self._buffer[offset:offset + length]

    def columns(self) -> Dict[Hashable, np.ndarray]:
        return {key: self.column(key) for key in self.layout}

    @property
    def nbytes(self) -> int:
        """Payload bytes laid out in this arena (alignment padding
        excluded) — the currency of the pool's byte metrics."""
        return sum(length
                   for _, length in self.layout.values()) * ITEM_BYTES

    def descriptor(self) -> ArenaDescriptor:
        """The picklable handle workers attach by (shm arenas only)."""
        if self.name is None:
            raise ValueError(
                f"a {self.backing!r}-backed arena has no shared name; "
                f"build with backing='shm' to publish")
        return (self.name, self.layout, self.n_rows, self.arity)

    # -- ownership -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def refs(self) -> int:
        return self._refs

    def acquire(self) -> "ColumnArena":
        """Take a shared reference; every acquire needs one
        :meth:`release`."""
        with self._lock:
            if self._closed:
                raise ValueError("arena is closed")
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last one destroys the backing (and
        unlinks the shared segment).  Idempotent past zero."""
        with self._lock:
            if self._closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._closed = True
        self._destroy()

    def _destroy(self) -> None:
        self._buffer = None
        self._keepalive = None
        if self._map is not None:
            mapping, self._map = self._map, None
            try:
                mapping.close()
            except (BufferError, ValueError):  # pragma: no cover
                pass
        if self._segment is not None:
            segment, self._segment = self._segment, None
            try:
                segment.close()
            except BufferError:  # a view outlived us; GC unmaps
                pass
            # only the creating process owns the name; a forked child
            # tearing down its inherited copy must not unlink a segment
            # the coordinator still serves
            if os.getpid() == self._owner_pid:
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass


def arrow_available() -> bool:
    """True when ``pyarrow`` imports (it is an optional dependency)."""
    try:
        import pyarrow  # noqa: F401
    except ImportError:
        return False
    return True


def columns_from_arrow(table):
    """``(names, columns)`` of a ``pyarrow.Table`` for the encoder.

    Nulls become ``None`` (the encoder's missing marker).  Raises
    :class:`RuntimeError` when pyarrow is not installed, so callers can
    gate on :func:`arrow_available` instead of try/except ImportError.
    """
    if not arrow_available():
        raise RuntimeError(
            "pyarrow is not installed; Arrow-backed ingest is "
            "unavailable (install pyarrow or pass plain columns)")
    names = list(table.column_names)
    columns = [table.column(name).to_pylist() for name in names]
    return names, columns
