"""Pluggable kernel backends for the FASTOD hot path.

The four kernels every discovery run lives in — partition product
(CSR composite-key grouping), swap scan, split scan, and rank
re-encoding (densify) — are dispatched through this package to one of
two interchangeable backends:

* ``reference`` — the PR 1 vectorized NumPy kernels
  (:mod:`repro.kernels.reference`); always available, and the semantic
  definition of every kernel's output.
* ``compiled`` — C translations built on demand with the host
  toolchain and bound via ctypes (:mod:`repro.kernels.compiled`);
  byte-identical outputs, measured ~2-6x faster per kernel.  Falls
  back to ``reference`` cleanly when no compiler is available.

Selection order: an explicit ``activate()`` (what the executors use to
honor ``FastODConfig(kernel_backend=...)``) > the process default set
by :func:`set_default_backend` or the ``REPRO_KERNELS`` environment
variable (``auto``/``reference``/``compiled``) > ``auto``.  ``auto``
prefers the compiled backend when it builds, the reference backend
otherwise; asking for ``compiled`` explicitly when it cannot build
warns once and falls back.

Every dispatch is billed to the ``repro_kernel_calls_total`` /
``repro_kernel_seconds_total`` counter families (labels ``kernel``,
``backend``) of the process-wide :mod:`repro.obs.metrics` registry, so
``/metrics`` separates product from swap/split/densify time by
backend.  The timing wrapper short-circuits when the registry is
disabled, keeping the observability overhead gate honest.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np

from repro.kernels import thresholds
from repro.kernels.reference import ReferenceBackend
from repro.obs import metrics, trace

#: Names :func:`resolve_backend` accepts (``None``/"" mean "default").
BACKEND_NAMES = ("auto", "reference", "compiled")

_REFERENCE = ReferenceBackend()

#: process default backend, resolved lazily from ``REPRO_KERNELS``
_default = None
_default_lock = threading.Lock()

#: per-thread activation stack (executors activate around batches)
_active = threading.local()

_warned_fallback = False

_KERNEL_CALLS = metrics.counter(
    "repro_kernel_calls_total",
    "Vectorized kernel dispatches, by kernel and backend",
    ("kernel", "backend"))
_KERNEL_SECONDS = metrics.counter(
    "repro_kernel_seconds_total",
    "Wall-clock seconds inside vectorized kernels, by kernel and "
    "backend", ("kernel", "backend"))


def _compiled_or_fallback(explicit: bool):
    """The compiled backend, or the reference backend when it cannot
    build (warning once when the caller asked for it by name)."""
    global _warned_fallback
    from repro.kernels import compiled as compiled_module

    try:
        return compiled_module.CompiledBackend()
    except compiled_module.CompiledKernelsUnavailable as error:
        if explicit and not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                f"REPRO_KERNELS/kernel_backend requested the compiled "
                f"backend, but it is unavailable ({error}); falling "
                f"back to the reference backend", RuntimeWarning,
                stacklevel=3)
        return _REFERENCE


def resolve_backend(name: Optional[str]):
    """Resolve a backend name to a backend object.

    ``None``/"" defer to the process default; ``"auto"`` prefers
    compiled when it builds; ``"compiled"`` warns and falls back to
    reference when the build fails, so a pinned config never crashes a
    host without a toolchain.
    """
    if name is None or name == "":
        return default_backend()
    name = str(name).strip().lower()
    if name == "reference":
        return _REFERENCE
    if name == "compiled":
        return _compiled_or_fallback(explicit=True)
    if name == "auto":
        return _compiled_or_fallback(explicit=False)
    raise ValueError(
        f"unknown kernel backend {name!r}; expected one of "
        f"{BACKEND_NAMES}")


def default_backend():
    """The process default backend (``REPRO_KERNELS``, else auto)."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = resolve_backend(
                    os.environ.get("REPRO_KERNELS", "auto") or "auto")
    return _default


def set_default_backend(name: Optional[str]) -> str:
    """Set the process default backend by name (CLI/server boot);
    returns the resolved backend's name."""
    global _default
    backend = resolve_backend(name or "auto")
    with _default_lock:
        _default = backend
    return backend.name


def active_backend():
    """The backend the current thread dispatches to."""
    stack = getattr(_active, "stack", None)
    if stack:
        return stack[-1]
    return default_backend()


def active_backend_name() -> str:
    return active_backend().name


@contextmanager
def activate(backend):
    """Run a block under an explicit backend (object or name)."""
    if isinstance(backend, str) or backend is None:
        backend = resolve_backend(backend)
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = _active.stack = []
    stack.append(backend)
    try:
        yield backend
    finally:
        stack.pop()


def compiled_available() -> bool:
    """True when the compiled backend builds and loads on this host."""
    from repro.kernels import compiled as compiled_module

    try:
        compiled_module.CompiledBackend()
        return True
    except compiled_module.CompiledKernelsUnavailable:
        return False


def effective_scalar_threshold(module_value: int) -> int:
    """The grouped-row count at or below which callers should take
    their scalar path.

    An explicitly retuned module global wins (tests and benchmarks
    monkeypatch ``SMALL_KERNEL_THRESHOLD`` to force one path);
    otherwise the active backend's measured crossover applies — the
    compiled kernels amortize so little per call that their scalar
    gate sits at :data:`thresholds.COMPILED_SCALAR_THRESHOLD` instead
    of the reference backend's 64.
    """
    if module_value != thresholds.REFERENCE_SCALAR_THRESHOLD:
        return module_value
    return active_backend().scalar_threshold


# ----------------------------------------------------------------------
# dispatchers (the only call sites the hot paths use)
# ----------------------------------------------------------------------
#: Per-kernel trace spans are recorded only where a dispatch is the
#: unit of work worth a timeline row — pool worker tasks enable this
#: around their handler.  The coordinator's serial hot loop keeps the
#: flag off (phases stay the span granularity there), which is what
#: holds the serial path inside the ≤5 % overhead budget.
_KERNEL_SPANS = False


def set_kernel_spans(flag: bool) -> None:
    """Enable/disable per-kernel leaf spans for this process (pool
    workers toggle it around each task)."""
    global _KERNEL_SPANS
    _KERNEL_SPANS = bool(flag)


def _bill(kernel: str, backend_name: str, seconds: float) -> None:
    _KERNEL_CALLS.inc(kernel=kernel, backend=backend_name)
    _KERNEL_SECONDS.inc(seconds, kernel=kernel, backend=backend_name)


def partition_product(probe: np.ndarray, rows_y: np.ndarray,
                      offsets_y: np.ndarray, class_ids_y: np.ndarray,
                      n_left: int) -> Tuple[np.ndarray, np.ndarray]:
    """Π_X · Π_Y refinement on the flat CSR layout (see
    :meth:`repro.kernels.reference.ReferenceBackend.partition_product`
    for the output contract)."""
    backend = active_backend()
    if not metrics.enabled():
        return backend.partition_product(probe, rows_y, offsets_y,
                                         class_ids_y, n_left)
    started = time.perf_counter()
    out = backend.partition_product(probe, rows_y, offsets_y,
                                    class_ids_y, n_left)
    ended = time.perf_counter()
    _bill("product", backend.name, ended - started)
    if _KERNEL_SPANS:
        trace.record_leaf("kernel", started, ended,
                          kernel="product", backend=backend.name)
    return out


def swap_flags(col_a: np.ndarray, col_b: np.ndarray, rows: np.ndarray,
               offsets: np.ndarray, class_ids: np.ndarray) -> np.ndarray:
    """Per-class swap flags for ``X: A ~ B`` over one context."""
    backend = active_backend()
    if not metrics.enabled():
        return backend.swap_flags(col_a, col_b, rows, offsets, class_ids)
    started = time.perf_counter()
    out = backend.swap_flags(col_a, col_b, rows, offsets, class_ids)
    ended = time.perf_counter()
    _bill("swap", backend.name, ended - started)
    if _KERNEL_SPANS:
        trace.record_leaf("kernel", started, ended,
                          kernel="swap", backend=backend.name)
    return out


def split_mismatch(column: np.ndarray, rows: np.ndarray,
                   offsets: np.ndarray,
                   class_sizes: np.ndarray) -> np.ndarray:
    """Per-grouped-row constancy mismatch mask for ``X: [] ↦ A``."""
    backend = active_backend()
    if not metrics.enabled():
        return backend.split_mismatch(column, rows, offsets, class_sizes)
    started = time.perf_counter()
    out = backend.split_mismatch(column, rows, offsets, class_sizes)
    ended = time.perf_counter()
    _bill("split", backend.name, ended - started)
    if _KERNEL_SPANS:
        trace.record_leaf("kernel", started, ended,
                          kernel="split", backend=backend.name)
    return out


def densify(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Rank re-encoding: sorted distinct values + dense inverse
    (byte-identical to ``np.unique(values, return_inverse=True)``)."""
    backend = active_backend()
    if not metrics.enabled():
        return backend.densify(values)
    started = time.perf_counter()
    out = backend.densify(values)
    ended = time.perf_counter()
    _bill("densify", backend.name, ended - started)
    if _KERNEL_SPANS:
        trace.record_leaf("kernel", started, ended,
                          kernel="densify", backend=backend.name)
    return out


__all__ = [
    "BACKEND_NAMES",
    "activate",
    "active_backend",
    "active_backend_name",
    "compiled_available",
    "default_backend",
    "densify",
    "effective_scalar_threshold",
    "partition_product",
    "resolve_backend",
    "set_default_backend",
    "set_kernel_spans",
    "split_mismatch",
    "swap_flags",
    "thresholds",
]
