"""The one home for the kernel crossover thresholds.

Every size gate the hot path consults — "scalar scan vs vectorized
kernel" and "serial vs pooled dispatch" — is defined here with its
provenance, instead of as scattered literals.  The historical module
globals (``repro.partitions.partition.SMALL_KERNEL_THRESHOLD``,
``repro.parallel.pool.PARALLEL_MIN_GROUPED_ROWS`` /
``PARALLEL_MIN_ROWS``) remain the names hot code *reads at call time*
— tests and benchmarks retune them by monkeypatching those modules —
but their values are assigned from the constants below.

Crossover measurements (``benchmarks/bench_partition_kernels.py``
micro section, single-core CI-class x86-64 container, NumPy 2.x,
August 2026):

* **Reference (NumPy) scalar gate — 64 grouped rows.**  The
  vectorized product/swap kernels pay ~a dozen ufunc dispatches
  (~15-30 µs) regardless of size; the per-row dict/scan work wins
  below ~64 grouped rows.  Unchanged from the PR 1 tuning — re-measured
  and confirmed within noise.
* **Compiled scalar gate — 16 grouped rows.**  A compiled kernel call
  costs one ctypes dispatch plus two small array allocations (~2-4 µs
  total), so the crossover against the Python scalar paths sits far
  lower: the C kernels win from roughly a dozen grouped rows up, and
  below that the difference is tens of nanoseconds either way.  16
  keeps the tiny-class tail on the allocation-free scalar path.
* **Pool dispatch floors — 16 384 grouped rows / 4 096 relation
  rows.**  Process dispatch costs a fraction of a millisecond per
  chunk plus a segment publish; with the compiled kernels *faster*
  per row, the break-even moves up, not down — the measured floor
  stayed within the same bracket, so the PR 4 values stand for both
  backends.
* **Compiled swap routing — mean class size 64.**  The C swap kernel
  sorts each class independently (insertion sort to ~48 elements,
  ``qsort`` beyond) and beats the reference's global composite-key
  ``argsort`` 3-4.5x while classes stay small — the common shape at
  lattice levels >= 2, where context partitions are products.  On
  coarse contexts (few giant classes) NumPy's single large sort wins:
  measured 3.4x at mean class 8, ~1.0x at 64, 0.77x at 256.  The
  compiled backend therefore routes swap calls whose mean class size
  exceeds this crossover to the reference implementation (identical
  output by contract, so routing is invisible to callers).
"""

from __future__ import annotations

#: Grouped-row count at or below which the NumPy reference backend
#: falls back to the scalar (dict/loop) paths.
REFERENCE_SCALAR_THRESHOLD = 64

#: Grouped-row count at or below which the compiled backend falls back
#: to the scalar paths.
COMPILED_SCALAR_THRESHOLD = 16

#: Grouped rows a dispatch's partitions must carry before the pool
#: executor leaves the coordinator (see repro.parallel.pool).
PARALLEL_MIN_GROUPED_ROWS = 16_384

#: Relation-row floor for the mask-derived validation dispatches,
#: whose context partitions are not known up front.
PARALLEL_MIN_ROWS = 4_096

#: Mean class size above which the compiled backend's swap kernel
#: routes to the reference (NumPy) implementation — per-class qsort
#: loses to one global argsort on coarse contexts.
SWAP_MEAN_CLASS_CROSSOVER = 64
