/* Compiled partition/validation kernels for the FASTOD hot path.
 *
 * Built on demand by repro/kernels/compiled.py (cc -O3 -shared -fPIC)
 * and called through ctypes — no CPython API, so the same source works
 * on any interpreter with a C toolchain, and its absence degrades
 * cleanly to the NumPy reference backend.
 *
 * Output contract: every kernel reproduces the reference backend's
 * arrays byte for byte.  The comments on each kernel state why; the
 * backend-parity suite (tests/kernels) enforces it.
 *
 * All arrays are contiguous int64 unless noted; flags/masks are uint8
 * (0/1) so Python can reinterpret them as bool without a copy.
 */

#include <stdint.h>
#include <stdlib.h>

static int cmp_i64(const void *x, const void *y)
{
    int64_t a = *(const int64_t *)x, b = *(const int64_t *)y;
    return (a > b) - (a < b);
}

/* ------------------------------------------------------------------ */
/* partition product: Π_X · Π_Y on the flat CSR layout                */
/* ------------------------------------------------------------------ */

/* Refine Π_Y's classes by Π_X's row->class probe table.
 *
 * The NumPy reference sorts the grouped rows by the composite key
 * (y_class * n_left + left_class) with a stable sort and strips
 * singleton runs.  That layout is: classes ordered by (y_class asc,
 * left_class asc), rows within a class in their original rows_y
 * order.  This kernel reproduces it directly — per y-class counting
 * of the left classes touched, groups emitted in ascending left-class
 * order, rows placed in a second pass over the segment in original
 * order — in O(m + k log k) without the global sort.
 *
 * probe       : row -> left class id, -1 for singleton rows (n_probe
 *               entries; rows_y values index into it)
 * rows_y      : flat grouped rows of Π_Y (m entries)
 * offsets_y   : class boundaries of Π_Y (n_classes_y + 1 entries)
 * n_left      : number of classes of Π_X (probe values < n_left)
 * out_rows    : capacity m
 * out_offsets : capacity m/2 + 2
 *
 * Returns the number of refined classes (out_offsets[k] is the total
 * row count), or -1 on allocation failure.
 */
int64_t repro_product(const int64_t *probe, const int64_t *rows_y,
                      const int64_t *offsets_y, int64_t n_classes_y,
                      int64_t n_left, int64_t *out_rows,
                      int64_t *out_offsets)
{
    int64_t m = offsets_y[n_classes_y];
    size_t left_cap = (size_t)(n_left > 0 ? n_left : 1);
    /* count is calloc'd once and reset via the touched list, so a
     * class touching t left classes costs O(t), not O(n_left) */
    int64_t *count = calloc(left_cap, sizeof *count);
    int64_t *cursor = malloc(left_cap * sizeof *cursor);
    int64_t *touched = malloc((size_t)(m > 0 ? m : 1) * sizeof *touched);
    if (!count || !cursor || !touched) {
        free(count);
        free(cursor);
        free(touched);
        return -1;
    }
    int64_t k = 0;
    int64_t filled = 0;
    out_offsets[0] = 0;
    for (int64_t c = 0; c < n_classes_y; c++) {
        int64_t s = offsets_y[c], e = offsets_y[c + 1];
        int64_t nt = 0;
        for (int64_t i = s; i < e; i++) {
            int64_t left = probe[rows_y[i]];
            if (left < 0)
                continue;
            if (count[left] == 0)
                touched[nt++] = left;
            count[left]++;
        }
        if (nt > 1) {
            if (nt <= 32) {
                for (int64_t i = 1; i < nt; i++) {
                    int64_t v = touched[i], j = i - 1;
                    while (j >= 0 && touched[j] > v) {
                        touched[j + 1] = touched[j];
                        j--;
                    }
                    touched[j + 1] = v;
                }
            } else {
                qsort(touched, (size_t)nt, sizeof *touched, cmp_i64);
            }
        }
        for (int64_t t = 0; t < nt; t++) {
            int64_t left = touched[t];
            if (count[left] >= 2) {
                cursor[left] = filled;
                filled += count[left];
                out_offsets[++k] = filled;
            } else {
                cursor[left] = -1;    /* singleton: stripped */
            }
        }
        for (int64_t i = s; i < e; i++) {
            int64_t left = probe[rows_y[i]];
            if (left < 0)
                continue;
            if (cursor[left] >= 0)
                out_rows[cursor[left]++] = rows_y[i];
        }
        for (int64_t t = 0; t < nt; t++)
            count[touched[t]] = 0;
    }
    free(count);
    free(cursor);
    free(touched);
    return k;
}

/* ------------------------------------------------------------------ */
/* swap scan: per-class "is there a swap pair?" flags                 */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t a;
    int64_t b;
} repro_pair;

static int cmp_pair_a(const void *x, const void *y)
{
    const repro_pair *p = x, *q = y;
    return (p->a > q->a) - (p->a < q->a);
}

/* Flag every context class containing a swap w.r.t. X: A ~ B.
 *
 * Per class: sort the (A, B) rank pairs by A, then scan groups of
 * equal A in ascending order tracking the maximum B over *earlier*
 * groups; any B below that maximum is a swap (Definition 5).  This is
 * the scalar reference scan per class, so the per-class verdicts are
 * exactly the reference backend's — the sort order of B within an A
 * group is irrelevant because only the group maximum is consulted.
 *
 * Handles arbitrary int64 values (the descending-column scans negate
 * B, so values may be negative).  Early-exits each class on its first
 * swap.  Returns the number of flagged classes, or -1 on allocation
 * failure.
 */
int64_t repro_swap_flags(const int64_t *col_a, const int64_t *col_b,
                         const int64_t *rows, const int64_t *offsets,
                         int64_t n_classes, uint8_t *out_flags)
{
    int64_t max_class = 1;
    for (int64_t c = 0; c < n_classes; c++) {
        int64_t n = offsets[c + 1] - offsets[c];
        if (n > max_class)
            max_class = n;
    }
    repro_pair *pairs = malloc((size_t)max_class * sizeof *pairs);
    if (!pairs)
        return -1;
    int64_t flagged = 0;
    for (int64_t c = 0; c < n_classes; c++) {
        int64_t s = offsets[c];
        int64_t n = offsets[c + 1] - s;
        out_flags[c] = 0;
        if (n < 2)
            continue;
        for (int64_t i = 0; i < n; i++) {
            int64_t row = rows[s + i];
            pairs[i].a = col_a[row];
            pairs[i].b = col_b[row];
        }
        if (n <= 48) {
            for (int64_t i = 1; i < n; i++) {
                repro_pair v = pairs[i];
                int64_t j = i - 1;
                while (j >= 0 && pairs[j].a > v.a) {
                    pairs[j + 1] = pairs[j];
                    j--;
                }
                pairs[j + 1] = v;
            }
        } else {
            qsort(pairs, (size_t)n, sizeof *pairs, cmp_pair_a);
        }
        int64_t max_before = 0;
        int has_before = 0;
        int64_t i = 0;
        while (i < n && !out_flags[c]) {
            int64_t a = pairs[i].a;
            int64_t group_max = pairs[i].b;
            int64_t j = i;
            for (; j < n && pairs[j].a == a; j++) {
                int64_t b = pairs[j].b;
                if (has_before && b < max_before) {
                    out_flags[c] = 1;
                    break;
                }
                if (b > group_max)
                    group_max = b;
            }
            if (!has_before || group_max > max_before) {
                max_before = group_max;
                has_before = 1;
            }
            while (j < n && pairs[j].a == a)
                j++;
            i = j;
        }
        if (out_flags[c])
            flagged++;
    }
    free(pairs);
    return flagged;
}

/* ------------------------------------------------------------------ */
/* split scan: per-grouped-row constancy mismatch mask                */
/* ------------------------------------------------------------------ */

/* out_mask[i] = 1 iff column[rows[i]] differs from its class's first
 * value — positionally identical to the reference's gather/repeat
 * comparison. */
void repro_split_mismatch(const int64_t *column, const int64_t *rows,
                          const int64_t *offsets, int64_t n_classes,
                          uint8_t *out_mask)
{
    for (int64_t c = 0; c < n_classes; c++) {
        int64_t s = offsets[c], e = offsets[c + 1];
        if (s >= e)
            continue;
        int64_t first = column[rows[s]];
        out_mask[s] = 0;
        for (int64_t i = s + 1; i < e; i++)
            out_mask[i] = column[rows[i]] != first;
    }
}

/* ------------------------------------------------------------------ */
/* rank re-encoding: densify a gathered rank column                   */
/* ------------------------------------------------------------------ */

/* np.unique(values, return_inverse=True) for nonnegative, bounded-
 * range int64 ranks: out_survivors gets the sorted distinct values
 * (ascending), out_dense (n entries) each value's index among them.
 * Two counting passes over a presence/rank table of size (max-min+1)
 * replace the sort.
 *
 * Returns the number of distinct values, or a negative fallback code
 * the caller resolves with np.unique: -1 negative input, -2 value
 * range too wide to table (> 4n + 1024), -3 allocation failure.
 */
int64_t repro_densify(const int64_t *values, int64_t n,
                      int64_t *out_survivors, int64_t *out_dense)
{
    if (n == 0)
        return 0;
    int64_t lo = values[0], hi = values[0];
    for (int64_t i = 1; i < n; i++) {
        if (values[i] < lo)
            lo = values[i];
        if (values[i] > hi)
            hi = values[i];
    }
    if (lo < 0)
        return -1;
    int64_t range = hi - lo + 1;
    if (range > 4 * n + 1024)
        return -2;
    int64_t *map = calloc((size_t)range, sizeof *map);
    if (!map)
        return -3;
    for (int64_t i = 0; i < n; i++)
        map[values[i] - lo] = 1;
    int64_t k = 0;
    for (int64_t r = 0; r < range; r++) {
        if (map[r]) {
            out_survivors[k] = lo + r;
            map[r] = ++k;             /* rank + 1; 0 stays "absent" */
        }
    }
    for (int64_t i = 0; i < n; i++)
        out_dense[i] = map[values[i] - lo] - 1;
    free(map);
    return k;
}
