"""The compiled (C) kernel backend: build on demand, bind via ctypes.

Numba and Cython are optional heavyweight dependencies this library
deliberately avoids; a plain C translation unit compiled with whatever
``cc`` the host provides covers the same ground with zero install
surface.  ``_kernels.c`` is compiled once into a content-addressed
shared library under a user cache directory and loaded through
``ctypes`` (no CPython API — the binary is interpreter-agnostic).

Anything going wrong — no compiler, a failing compile, an unwritable
cache, a broken library — raises :class:`CompiledKernelsUnavailable`,
which the backend resolver in :mod:`repro.kernels` turns into a clean
fallback to the reference backend.  Nothing in this module is imported
at package-import time.

Environment knobs:

* ``REPRO_KERNELS_CC`` — compiler executable (default: first of
  ``cc``/``gcc``/``clang`` on ``PATH``).  Pointing it at a bogus
  binary is the supported way to force the fallback path in tests.
* ``REPRO_KERNELS_CACHE`` — cache directory for built libraries
  (default ``$XDG_CACHE_HOME/repro-kernels`` or
  ``~/.cache/repro-kernels``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.kernels import thresholds

_SOURCE = Path(__file__).with_name("_kernels.c")
_CFLAGS = ("-O3", "-shared", "-fPIC", "-std=c11", "-fno-math-errno")

#: memoized library handle; ``False`` marks a failed attempt so a
#: process never retries a broken toolchain per call.
_LIB: Optional[object] = None


class CompiledKernelsUnavailable(RuntimeError):
    """The compiled backend cannot be built or loaded on this host."""


def _compiler() -> str:
    cc = os.environ.get("REPRO_KERNELS_CC", "").strip()
    if cc:
        return cc
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    raise CompiledKernelsUnavailable("no C compiler on PATH")


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNELS_CACHE", "").strip()
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    root = Path(xdg) if xdg else Path.home() / ".cache"
    return root / "repro-kernels"


def build_library() -> Path:
    """Compile ``_kernels.c`` into the cache (idempotent).

    The library file name hashes the source text plus the compiler and
    flags, so editing the source or switching toolchains rebuilds
    instead of loading a stale binary; the compile lands in a temp
    file renamed into place, so concurrent builders race benignly.
    """
    try:
        source = _SOURCE.read_text()
    except OSError as error:
        raise CompiledKernelsUnavailable(
            f"kernel source unreadable: {error}") from error
    cc = _compiler()
    digest = hashlib.sha256(
        "\x00".join((source, cc, " ".join(_CFLAGS))).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    target = cache / f"repro_kernels_{digest}.so"
    if target.exists():
        return target
    try:
        cache.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
        os.close(fd)
    except OSError as error:
        raise CompiledKernelsUnavailable(
            f"kernel cache unwritable: {error}") from error
    try:
        proc = subprocess.run(
            [cc, *_CFLAGS, "-o", tmp, str(_SOURCE)],
            capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.SubprocessError) as error:
        os.unlink(tmp)
        raise CompiledKernelsUnavailable(
            f"compiler failed to run: {error}") from error
    if proc.returncode != 0:
        os.unlink(tmp)
        raise CompiledKernelsUnavailable(
            f"kernel compile failed ({cc}):\n{proc.stderr.strip()}")
    os.replace(tmp, target)
    return target


def _load() -> ctypes.CDLL:
    global _LIB
    if _LIB is False:
        raise CompiledKernelsUnavailable(
            "compiled kernels already failed to load in this process")
    if _LIB is not None:
        return _LIB
    try:
        lib = ctypes.CDLL(str(build_library()))
        i64 = ctypes.c_int64
        ptr = ctypes.c_void_p
        lib.repro_product.restype = i64
        lib.repro_product.argtypes = [ptr, ptr, ptr, i64, i64, ptr, ptr]
        lib.repro_swap_flags.restype = i64
        lib.repro_swap_flags.argtypes = [ptr, ptr, ptr, ptr, i64, ptr]
        lib.repro_split_mismatch.restype = None
        lib.repro_split_mismatch.argtypes = [ptr, ptr, ptr, i64, ptr]
        lib.repro_densify.restype = i64
        lib.repro_densify.argtypes = [ptr, i64, ptr, ptr]
    except (OSError, AttributeError, CompiledKernelsUnavailable) as error:
        _LIB = False
        if isinstance(error, CompiledKernelsUnavailable):
            raise
        raise CompiledKernelsUnavailable(
            f"compiled kernel library unusable: {error}") from error
    _LIB = lib
    return lib


def _c(array: np.ndarray) -> np.ndarray:
    """A C-contiguous int64 view (copying only if needed)."""
    return np.ascontiguousarray(array, dtype=np.int64)


_EMPTY_ROWS = np.empty(0, dtype=np.int64)
_EMPTY_ROWS.setflags(write=False)
_ZERO_OFFSET = np.zeros(1, dtype=np.int64)
_ZERO_OFFSET.setflags(write=False)


class CompiledBackend:
    """ctypes bindings satisfying the reference backend's contract
    (see :class:`repro.kernels.reference.ReferenceBackend` for the
    per-kernel output specifications the parity suite enforces)."""

    name = "compiled"
    scalar_threshold = thresholds.COMPILED_SCALAR_THRESHOLD

    def __init__(self):
        self._lib = _load()

    def partition_product(self, probe: np.ndarray, rows_y: np.ndarray,
                          offsets_y: np.ndarray, class_ids_y: np.ndarray,
                          n_left: int) -> Tuple[np.ndarray, np.ndarray]:
        m = len(rows_y)
        if m == 0:
            return _EMPTY_ROWS, _ZERO_OFFSET
        probe = _c(probe)
        rows_y = _c(rows_y)
        offsets_y = _c(offsets_y)
        out_rows = np.empty(m, dtype=np.int64)
        out_offsets = np.empty(m // 2 + 2, dtype=np.int64)
        k = self._lib.repro_product(
            probe.ctypes.data, rows_y.ctypes.data, offsets_y.ctypes.data,
            len(offsets_y) - 1, int(n_left),
            out_rows.ctypes.data, out_offsets.ctypes.data)
        if k < 0:
            raise MemoryError("repro_product scratch allocation failed")
        if k == 0:
            return _EMPTY_ROWS, _ZERO_OFFSET
        total = int(out_offsets[k])
        return out_rows[:total].copy(), out_offsets[:k + 1].copy()

    def swap_flags(self, col_a: np.ndarray, col_b: np.ndarray,
                   rows: np.ndarray, offsets: np.ndarray,
                   class_ids: np.ndarray) -> np.ndarray:
        n_classes = len(offsets) - 1
        flags = np.zeros(max(n_classes, 1), dtype=np.uint8)
        if len(rows) == 0 or n_classes == 0:
            return flags[:n_classes].view(bool)
        if len(rows) > n_classes * thresholds.SWAP_MEAN_CLASS_CROSSOVER:
            # coarse context (few giant classes): one global argsort
            # beats per-class qsort — route to the NumPy kernel, whose
            # output is identical by contract
            from repro.kernels.reference import ReferenceBackend

            return ReferenceBackend.swap_flags(
                col_a, col_b, rows, offsets, class_ids)
        col_a = _c(col_a)
        col_b = _c(col_b)
        rows = _c(rows)
        offsets = _c(offsets)
        flagged = self._lib.repro_swap_flags(
            col_a.ctypes.data, col_b.ctypes.data, rows.ctypes.data,
            offsets.ctypes.data, n_classes, flags.ctypes.data)
        if flagged < 0:
            raise MemoryError("repro_swap_flags scratch allocation failed")
        return flags[:n_classes].view(bool)

    def split_mismatch(self, column: np.ndarray, rows: np.ndarray,
                       offsets: np.ndarray,
                       class_sizes: np.ndarray) -> np.ndarray:
        n = len(rows)
        mask = np.empty(max(n, 1), dtype=np.uint8)
        if n == 0:
            return mask[:0].view(bool)
        column = _c(column)
        rows = _c(rows)
        offsets = _c(offsets)
        self._lib.repro_split_mismatch(
            column.ctypes.data, rows.ctypes.data, offsets.ctypes.data,
            len(offsets) - 1, mask.ctypes.data)
        return mask[:n].view(bool)

    def densify(self, values: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        n = len(values)
        if n == 0:
            return np.unique(values, return_inverse=True)
        values = _c(values)
        survivors = np.empty(n, dtype=np.int64)
        dense = np.empty(n, dtype=np.int64)
        k = self._lib.repro_densify(
            values.ctypes.data, n, survivors.ctypes.data,
            dense.ctypes.data)
        if k < 0:
            # negative ranks (-1) or a value range too sparse to table
            # (-2) or scratch allocation failure (-3): the reference
            # path is both correct and, for these shapes, competitive
            survivors, dense = np.unique(values, return_inverse=True)
            return survivors, dense.astype(np.int64, copy=False)
        return survivors[:k].copy(), dense
