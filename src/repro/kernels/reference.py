"""The pure-NumPy reference kernel backend.

These are the PR 1 vectorized kernels, extracted verbatim from
:mod:`repro.partitions.partition` and :mod:`repro.core.validation`
into backend form: array-in/array-out functions with no partition or
relation objects in their signatures, so the compiled backend
(:mod:`repro.kernels.compiled`) can implement the same contract and be
checked for byte identity against this one (tests/kernels).

This backend is always available and is the semantic definition of
every kernel; the output contracts documented here are what the
parity suite enforces.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels import thresholds

#: Shared frozen empties (see partition.py for the rationale).
_EMPTY_ROWS = np.empty(0, dtype=np.int64)
_EMPTY_ROWS.setflags(write=False)
_ZERO_OFFSET = np.zeros(1, dtype=np.int64)
_ZERO_OFFSET.setflags(write=False)


def strip_sorted_runs(sorted_rows: np.ndarray, sorted_keys: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Flat (rows, offsets) of the runs of equal ``sorted_keys`` that
    are at least 2 long.

    ``sorted_rows``/``sorted_keys`` are parallel arrays already ordered
    by key.  Boundary detection is one ``np.diff``; singleton runs are
    dropped by filtering run lengths, and survivors are gathered with a
    single boolean mask so the result stays contiguous per class.
    """
    n = len(sorted_keys)
    change = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1])
    boundaries = np.empty(len(change) + 2, dtype=np.int64)
    boundaries[0] = 0
    boundaries[-1] = n
    boundaries[1:-1] = change + 1
    lengths = boundaries[1:] - boundaries[:-1]
    big = lengths >= 2
    if not big.any():
        return _EMPTY_ROWS, _ZERO_OFFSET
    sizes = lengths[big]
    # runs tile the whole array, so per-run flags expand to a per-
    # position keep mask in one repeat
    rows = sorted_rows[np.repeat(big, lengths)]
    offsets = np.concatenate((_ZERO_OFFSET, np.cumsum(sizes)))
    return rows, offsets


def swap_mask(class_ids: np.ndarray, values_a: np.ndarray,
              values_b: np.ndarray) -> np.ndarray:
    """Boolean mask of swap positions over class-then-(A,B)-sorted data.

    Inputs are parallel arrays already ordered by
    ``(class, A, B)``.  A position is a swap when its B rank lies below
    the maximum B of *strictly smaller* A groups within the same class.
    The per-class running max of B is one global
    ``np.maximum.accumulate`` over B values shifted by
    ``class_id * span`` (classes occupy disjoint value bands, so the
    accumulate never leaks across a class boundary); the "max over
    earlier A groups" is that running max sampled at each A-group's
    start and broadcast group-wise.
    """
    n = len(class_ids)
    new_class = np.empty(n, dtype=bool)
    new_class[0] = True
    np.not_equal(class_ids[1:], class_ids[:-1], out=new_class[1:])
    new_group = new_class.copy()
    new_group[1:] |= values_a[1:] != values_a[:-1]

    shifted_b = values_b - values_b.min()      # nonnegative, so -1 works
    span = int(shifted_b.max()) + 1            # as the "no max yet" mark
    banded = shifted_b + class_ids * span
    running_max = np.maximum.accumulate(banded) - class_ids * span

    before = np.empty(n, dtype=np.int64)
    before[0] = -1
    before[1:] = running_max[:-1]
    before[new_class] = -1
    group_of = np.cumsum(new_group) - 1
    max_b_of_earlier_groups = before[new_group][group_of]
    return shifted_b < max_b_of_earlier_groups


def sorted_swap_views(col_a: np.ndarray, col_b: np.ndarray,
                      rows: np.ndarray, class_ids: np.ndarray):
    """(class_ids, A, B) of the grouped rows, sorted by ``(class, A)``.

    :func:`swap_mask` needs equal ``(class, A)`` groups contiguous and
    classes in ascending-A group order, but is insensitive to the order
    of B *within* a group — so one composite-key ``argsort``
    (``class_id * span + A``) replaces a 3-key ``lexsort``, which
    profiled ~5x slower on discovery workloads.
    """
    values_a = col_a[rows]
    low = int(values_a.min())
    span = int(values_a.max()) - low + 1
    order = np.argsort(class_ids * span + (values_a - low))
    return class_ids[order], values_a[order], col_b[rows][order]


class ReferenceBackend:
    """Array-level kernel contract, NumPy implementation.

    Output contracts (the parity suite's currency):

    * :meth:`partition_product` — ``(rows, offsets)`` of the refined
      partition, classes ordered by ``(y-class, left-class)``
      ascending, rows within each class in their original ``rows_y``
      order (the stable composite-key-argsort layout).
    * :meth:`swap_flags` — one bool per context class: does the class
      contain a swap pair w.r.t. ``A ~ B``?  (Per-class flags rather
      than a positional mask: the two backends sort within classes
      differently, but the per-class verdicts are order-free.)
    * :meth:`split_mismatch` — bool per grouped row (parallel to
      ``rows``): does the row's value differ from its class's first?
    * :meth:`densify` — ``np.unique(values, return_inverse=True)``:
      sorted distinct values plus each value's index among them.
    """

    name = "reference"
    scalar_threshold = thresholds.REFERENCE_SCALAR_THRESHOLD

    @staticmethod
    def partition_product(probe: np.ndarray, rows_y: np.ndarray,
                          offsets_y: np.ndarray, class_ids_y: np.ndarray,
                          n_left: int) -> Tuple[np.ndarray, np.ndarray]:
        left = probe[rows_y]
        keep = left >= 0
        if not keep.all():
            rows_y = rows_y[keep]
            left = left[keep]
            class_ids_y = class_ids_y[keep]
        if len(rows_y) == 0:
            return _EMPTY_ROWS, _ZERO_OFFSET
        key = class_ids_y * n_left + left
        order = np.argsort(key, kind="stable")
        return strip_sorted_runs(rows_y[order], key[order])

    @staticmethod
    def swap_flags(col_a: np.ndarray, col_b: np.ndarray,
                   rows: np.ndarray, offsets: np.ndarray,
                   class_ids: np.ndarray) -> np.ndarray:
        n_classes = len(offsets) - 1
        if len(rows) == 0:
            return np.zeros(n_classes, dtype=bool)
        sorted_ids, values_a, values_b = sorted_swap_views(
            col_a, col_b, rows, class_ids)
        mask = swap_mask(sorted_ids, values_a, values_b)
        flags = np.zeros(n_classes, dtype=bool)
        flags[sorted_ids[mask]] = True
        return flags

    @staticmethod
    def split_mismatch(column: np.ndarray, rows: np.ndarray,
                       offsets: np.ndarray,
                       class_sizes: np.ndarray) -> np.ndarray:
        values = column[rows]
        firsts = np.repeat(values[offsets[:-1]], class_sizes)
        return values != firsts

    @staticmethod
    def densify(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        survivors, dense = np.unique(values, return_inverse=True)
        return survivors, dense.astype(np.int64, copy=False)
