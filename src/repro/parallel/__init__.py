"""Process-parallel lattice execution (shared-memory worker pool).

FASTOD's per-level work — partition products and validation scans —
has no cross-node dependencies, so it shards cleanly across worker
processes.  This package supplies:

* :class:`repro.parallel.pool.WorkerPool` — a persistent pool bound to
  one encoded relation, with the rank columns published once through
  ``multiprocessing.shared_memory`` and per-level partitions published
  per dispatch;
* :func:`repro.parallel.pool.resolve_workers` — the one place the
  ``workers`` knob (``FastODConfig.workers``, CLI ``--workers``, the
  ``REPRO_WORKERS`` environment variable) is interpreted;
* the serial-fallback thresholds ``PARALLEL_MIN_GROUPED_ROWS`` /
  ``PARALLEL_MIN_ROWS`` shared by every consumer, so tiny inputs never
  pay process dispatch overhead.

Results are byte-identical to the serial engine by construction: the
coordinator owns all candidate-set mutations and merges worker results
in deterministic mask order (see DESIGN.md, "Parallel execution").
"""

from repro.parallel.pool import (
    CHUNKS_PER_WORKER,
    PARALLEL_MIN_GROUPED_ROWS,
    PARALLEL_MIN_ROWS,
    ClassScanPool,
    PoolDispatchError,
    WorkerCrashError,
    WorkerPool,
    WorkerStallError,
    WorkerTaskError,
    resolve_workers,
)
from repro.parallel.shm import SharedArrayBlock, attach

__all__ = [
    "CHUNKS_PER_WORKER",
    "ClassScanPool",
    "PARALLEL_MIN_GROUPED_ROWS",
    "PARALLEL_MIN_ROWS",
    "PoolDispatchError",
    "SharedArrayBlock",
    "WorkerCrashError",
    "WorkerPool",
    "WorkerStallError",
    "WorkerTaskError",
    "attach",
    "resolve_workers",
]
