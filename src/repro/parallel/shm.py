"""Shared-memory publication of ``int64`` arrays for the worker pool.

The parallel engine ships its bulk inputs — the encoded relation's rank
columns and the flat CSR ``rows``/``offsets`` partition arrays — to
workers through :mod:`multiprocessing.shared_memory` instead of task
pickling: the coordinator copies each array into a named segment once,
and every worker maps the segment and reads zero-copy NumPy views.
Only small descriptors (segment name + per-array offsets) travel on the
task queue.

A block holds any number of named ``int64`` arrays back to back.  The
*layout* is a plain ``{key: (offset_items, length)}`` dict — keys are
whatever hashables the caller uses (attribute indices, ``(mask, "r")``
tuples, ...) — and is what gets pickled into task payloads, so a chunk
payload can carry just the slice of the layout its tasks touch.

Attaching registers the segment with the process-local
``resource_tracker``, which on worker exit would unlink segments the
worker does not own (bpo-38119); :func:`attach` therefore unregisters
right after attaching.  Ownership stays with the coordinator: blocks
are unlinked exactly once, by :meth:`SharedArrayBlock.close_and_unlink`
(or the pool's shutdown/finalizer sweep).
"""

from __future__ import annotations

import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Hashable, Tuple

import numpy as np

from repro import faults

#: Serializes the registration-suppression window of :func:`attach`
#: against concurrent segment creation (e.g. a GC finalizer unlinking
#: on another thread while a block is being published).
_TRACKER_LOCK = threading.Lock()

#: Bytes per item; every published array is ``int64``.
ITEM_BYTES = np.dtype(np.int64).itemsize

#: ``(segment name, layout)`` — everything a worker needs to read a block.
BlockDescriptor = Tuple[str, Dict[Hashable, Tuple[int, int]]]


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    Attaching must not register the segment with the process-local
    ``resource_tracker``: a spawned worker's tracker would unlink the
    segment when the worker exits (bpo-38119), and under fork an
    unregister from the shared tracker races the owner's own
    registration.  Registration is suppressed for the duration of the
    constructor instead; the creating coordinator remains the only
    registered owner.
    """
    with _TRACKER_LOCK:
        register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = register


def unlink_by_name(name: str) -> None:
    """Best-effort unlink of a segment by name (crash-path cleanup).

    The unlink's own ``resource_tracker`` unregister balances the
    registration made when the segment was created."""
    try:
        segment = attach(name)
    except FileNotFoundError:
        return
    try:
        segment.close()
    except BufferError:  # pragma: no cover
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover
        pass


class SharedArrayBlock:
    """Owner handle for one segment holding named ``int64`` arrays.

    Build with :meth:`publish` (copy existing arrays in) or
    :meth:`allocate` (zero-init capacity workers will write into, e.g.
    product results).  The owner must eventually call
    :meth:`close_and_unlink`; :class:`repro.parallel.pool.WorkerPool`
    tracks live blocks and sweeps leftovers on shutdown.
    """

    __slots__ = ("name", "layout", "_segment")

    def __init__(self, layout: Dict[Hashable, Tuple[int, int]],
                 total_items: int):
        with _TRACKER_LOCK:      # vs attach()'s suppression window
            self._segment = shared_memory.SharedMemory(
                create=True, size=max(total_items * ITEM_BYTES, 1))
        self.name = self._segment.name
        self.layout = layout

    @classmethod
    def publish(cls, arrays: Dict[Hashable, np.ndarray]
                ) -> "SharedArrayBlock":
        """Copy ``arrays`` into a fresh segment (one memcpy each).

        Creation takes the tracker lock too, so a concurrent
        :func:`attach` cannot swallow this segment's registration."""
        layout: Dict[Hashable, Tuple[int, int]] = {}
        total = 0
        for key, array in arrays.items():
            layout[key] = (total, len(array))
            total += len(array)
        block = cls(layout, total)
        for key, array in arrays.items():
            if len(array):
                view = block.array(key)
                view[:] = array
                del view
        return block

    @classmethod
    def allocate(cls, capacities: Dict[Hashable, int]) -> "SharedArrayBlock":
        """Reserve writable capacity per key without initialising it."""
        layout: Dict[Hashable, Tuple[int, int]] = {}
        total = 0
        for key, capacity in capacities.items():
            layout[key] = (total, capacity)
            total += capacity
        return cls(layout, total)

    @property
    def nbytes(self) -> int:
        """Payload bytes laid out in this segment (the currency of the
        pool's shm-published byte metrics)."""
        return sum(length
                   for _, length in self.layout.values()) * ITEM_BYTES

    def descriptor(self, keys=None) -> BlockDescriptor:
        """The picklable handle; ``keys`` restricts the layout to the
        entries one chunk actually touches."""
        if keys is None:
            return (self.name, self.layout)
        return (self.name, {key: self.layout[key] for key in keys})

    def array(self, key: Hashable) -> np.ndarray:
        """A view over one named array (owner side)."""
        offset, length = self.layout[key]
        return self.raw(offset, length)

    def raw(self, offset_items: int, length: int) -> np.ndarray:
        return np.frombuffer(self._segment.buf, dtype=np.int64,
                             offset=offset_items * ITEM_BYTES,
                             count=length)

    def close_and_unlink(self) -> None:
        if self._segment is None:
            return
        segment, self._segment = self._segment, None
        try:
            segment.close()
        except BufferError:  # a view outlived us; GC releases the map
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


class BlockReader:
    """Worker-side view factory over one attached segment."""

    __slots__ = ("name", "_segment")

    def __init__(self, name: str):
        # chaos hook: a reader that cannot map its segment (unlinked
        # under it, tmpfs exhausted) must surface as a typed dispatch
        # error the executor's recovery path can retry
        faults.maybe_raise("shm.attach",
                           f"cannot attach shared segment {name!r}")
        self.name = name
        self._segment = attach(name)

    def array(self, layout: Dict[Hashable, Tuple[int, int]],
              key: Hashable) -> np.ndarray:
        offset, length = layout[key]
        return self.raw(offset, length)

    def raw(self, offset_items: int, length: int) -> np.ndarray:
        return np.frombuffer(self._segment.buf, dtype=np.int64,
                             offset=offset_items * ITEM_BYTES,
                             count=length)

    def close(self) -> None:
        try:
            self._segment.close()
        except BufferError:  # live views keep the mapping; GC finishes
            pass
