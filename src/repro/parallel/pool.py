"""A persistent shared-memory worker pool for lattice-level execution.

FASTOD's level-wise sweep visits each lattice node independently within
a level: partition products and validation scans have no cross-node
dependencies (Algorithm 1).  :class:`WorkerPool` exploits that by
sharding a level's node work across long-lived ``multiprocessing``
worker processes:

* the encoded relation's rank columns are published **once** per pool
  (per :meth:`rebase` after appends) via
  :mod:`multiprocessing.shared_memory`; workers read zero-copy NumPy
  views, so task payloads never pickle a column;
* per dispatch, the partitions a level needs (parents for products,
  OCD contexts for scans) are published as one block and sharded by
  task chunk;
* **product results return through shared memory too**: the coordinator
  pre-allocates a writable block (the result of ``Π_X · Π_Y`` holds at
  most ``min(||Π*_X||, ||Π*_Y||)`` grouped rows), workers write their
  flat ``rows``/``offsets`` straight into their task's slot, and only
  ``(mask, lengths)`` triples travel back on the result queue;
* scan/validate verdicts are booleans — they ride the queue directly.

Determinism: workers run the exact same kernels
(:meth:`StrippedPartition.product`,
:func:`is_compatible_in_classes`, ...) on byte-identical inputs, and
the coordinator merges results keyed by mask/task id and applies them
in the serial engine's order — so a parallel run's partitions and
verdicts are byte-identical to ``workers=1``.

Lifecycle: worker processes start lazily on the first dispatch (a pool
created for a run that never crosses the serial-fallback thresholds
costs only one column publish), and :meth:`shutdown` — also invoked by
a GC finalizer, by ``with`` exit, and on any dispatch error including
``KeyboardInterrupt`` — terminates workers and unlinks every live
shared-memory segment, so crashes cannot leak segments.

Cancellation is cooperative: dispatches carry an optional wall-clock
deadline; workers re-check it between tasks inside a chunk and return
partial results flagged ``timed_out`` instead of scanning past the
budget.
"""

from __future__ import annotations

import os
import queue
import resource
import signal
import time
import traceback
import weakref
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import multiprocessing as mp

import numpy as np

from repro import faults
from repro.errors import ReproError
from repro import kernels
from repro.kernels import thresholds as kernel_thresholds
from repro.obs import accounting, metrics, profiler, trace
from repro.parallel.shm import BlockReader, SharedArrayBlock, unlink_by_name
from repro.partitions.partition import StrippedPartition
from repro.relation.encoding import EncodedRelation

_DISPATCHES = metrics.counter(
    "repro_pool_dispatches_total",
    "Chunked dispatches sent to the worker pool, by task kind",
    ("kind",))
_DISPATCH_SECONDS = metrics.histogram(
    "repro_pool_dispatch_seconds",
    "Coordinator wall clock per pool dispatch (submit to last "
    "result), by task kind", ("kind",))
_QUEUE_WAIT_SECONDS = metrics.histogram(
    "repro_pool_queue_wait_seconds",
    "Coordinator-observed queueing overhead per dispatch: wall clock "
    "minus the busiest chunk's kernel time, clamped at zero")
_SHM_BYTES = metrics.counter(
    "repro_pool_shm_bytes_total",
    "Bytes published into shared-memory blocks, by payload kind",
    ("payload",))
_CRASHES = metrics.counter(
    "repro_pool_crashes_total",
    "Dispatches that failed and tore the pool down, by failure shape",
    ("shape",))
_ZERO_COPY_BYTES = metrics.counter(
    "repro_pool_zero_copy_bytes_total",
    "Column bytes adopted from an already-published shared arena "
    "instead of being re-copied into a fresh segment")

#: Below this many grouped rows in a dispatch's partitions the callers
#: fall back to the serial path — process dispatch costs ~fractions of
#: a millisecond per chunk plus one segment publish, which only
#: amortizes once the vectorized kernels have real work to chew on.
#: Canonical value (with the crossover measurement) in
#: :mod:`repro.kernels.thresholds`; this module global stays the name
#: read at dispatch time so tests and benchmarks can retune it.
PARALLEL_MIN_GROUPED_ROWS = kernel_thresholds.PARALLEL_MIN_GROUPED_ROWS

#: Relation size floor for the hybrid/validator parallel paths, which
#: gate on rows (their context partitions are not known up front).
PARALLEL_MIN_ROWS = kernel_thresholds.PARALLEL_MIN_ROWS

#: Task chunks per worker and dispatch.  Two per worker balances the
#: trade measured on the Exp-1 workloads: more chunks smooth out
#: uneven node costs but repeat per-chunk context materialization
#: (shared parents/contexts are rebuilt in every chunk that touches
#: them), fewer chunks leave stragglers.
CHUNKS_PER_WORKER = 2

#: Dispatch telemetry records kept per pool (ring-buffer style) — far
#: more than one discovery run produces, small enough that a pool held
#: by an unbounded ``watch`` loop cannot accumulate without limit.
MAX_DISPATCH_RECORDS = 512

#: Partition blocks retained for worker reuse.  A level's partitions
#: serve as product parents one level later and as OCD contexts two
#: levels later, and early levels add small ad-hoc publish blocks
#: (singletons, the empty context) — six covers every live reference
#: with headroom; the oldest is unlinked as new levels arrive.
RETAINED_PARTITION_BLOCKS = 6

ScanTask = Tuple[Hashable, Hashable, str, int, int]

#: Where a partition's shared replica lives:
#: ``(block name, rows offset, rows len, offsets offset, offsets len)``
#: in int64 items.  Stored on ``StrippedPartition._shm_ref`` so a
#: partition is published once and then referenced by every later
#: dispatch that needs it (products one level up, OCD scans two levels
#: up) instead of being re-copied per level.
PartitionRef = Tuple[str, int, int, int, int]


class PoolDispatchError(ReproError):
    """A dispatch failed mid-flight.  ``partial_results`` holds the
    chunk payloads the coordinator had already collected — verdicts in
    them are *acknowledged* work a recovery layer must not redo."""

    def __init__(self, message: str,
                 partial_results: Optional[List[dict]] = None):
        super().__init__(message)
        self.partial_results: List[dict] = list(partial_results or [])


class WorkerCrashError(PoolDispatchError):
    """A worker process died while a dispatch was in flight.  The
    pool tears itself down on the way out; holders rebuild a fresh
    pool (see :class:`repro.engine.executors.PoolExecutor`, whose
    retry loop re-runs only unacknowledged tasks)."""


class WorkerTaskError(PoolDispatchError):
    """A task raised inside a worker; carries the remote traceback."""


class WorkerStallError(WorkerCrashError):
    """A dispatch made no progress for ``stall_timeout`` seconds while
    every worker stayed alive — a lost/stuck queue message.  Treated
    exactly like a crash by the recovery layer (the pool is rebuilt
    and unacknowledged tasks re-run)."""


def resolve_workers(workers: Optional[int]) -> int:
    """Effective worker count: explicit value, else ``REPRO_WORKERS``,
    else 1 (serial).  Values below 1 clamp to serial."""
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        try:
            workers = int(raw) if raw else 1
        except ValueError:
            workers = 1
    return max(1, int(workers))


def _chunk_slices(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` slices covering ``n_items``."""
    n_chunks = max(1, min(n_chunks, n_items))
    bounds = np.linspace(0, n_items, n_chunks + 1).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1]))
            for i in range(n_chunks) if bounds[i] < bounds[i + 1]]


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
_MAX_ATTACHMENTS = 6

#: Span-ring capacity per worker task: one "task" root plus one leaf
#: per kernel call and shm attach.  Bounded so a giant chunk ships a
#: bounded export back on the result queue (the freshest spans win).
_WORKER_SPAN_CAPACITY = 512


class _WorkerState:
    """Per-process caches: attached segments and partition caches."""

    def __init__(self):
        self.readers: "OrderedDict[str, BlockReader]" = OrderedDict()
        self.caches: "OrderedDict[str, object]" = OrderedDict()
        self.columns_by_block: "OrderedDict[str, List[np.ndarray]]" = \
            OrderedDict()

    def reader(self, name: str) -> BlockReader:
        reader = self.readers.pop(name, None)
        if reader is None:
            # the attach is span-worthy: it is the one worker-side op
            # whose cost scales with segment churn rather than task
            # size (no-op span outside an observed task / REPRO_OBS=0)
            with trace.span("shm-attach", block=name):
                reader = BlockReader(name)
        self.readers[name] = reader          # most-recently-used last
        while len(self.readers) > _MAX_ATTACHMENTS:
            _, stale = self.readers.popitem(last=False)
            stale.close()
        return reader

    def columns(self, descriptor) -> List[np.ndarray]:
        """Rank columns for one published block, copied onto this
        worker's heap on first use.

        The copy is deliberate: columns are the random-gather targets
        of every scan kernel, and heap pages (hugepage-backed, hot in
        this process) gather measurably faster than tmpfs-backed
        shared-memory pages.  One memcpy per worker per pool still
        beats pickling columns into every task by orders of magnitude.
        """
        name, layout, _n_rows, arity = descriptor
        columns = self.columns_by_block.get(name)
        if columns is None:
            reader = self.reader(name)
            columns = [np.array(reader.array(layout, a))
                       for a in range(arity)]
            # keep the current and (briefly, across a rebase) previous
            # relation's columns
            while len(self.columns_by_block) >= 2:
                self.columns_by_block.popitem(last=False)
            self.columns_by_block[name] = columns
        return columns

    def partition_cache(self, descriptor):
        """A worker-local :class:`PartitionCache` over the shared
        columns (hybrid escalation tasks derive ad-hoc contexts)."""
        from repro.partitions.cache import PartitionCache

        name, _layout, n_rows, arity = descriptor
        cache = self.caches.get(name)
        if cache is None:
            columns = self.columns(descriptor)
            relation = EncodedRelation(
                tuple(f"a{i}" for i in range(arity)), list(columns))
            if relation.n_rows != n_rows:  # pragma: no cover - paranoia
                raise ValueError("shared column length mismatch")
            cache = PartitionCache(relation, max_entries=128)
            # cap at the two most recent relations (pre/post rebase)
            while len(self.caches) >= 2:
                self.caches.pop(next(iter(self.caches)))
            self.caches[name] = cache
        return cache


def _past(deadline: Optional[float]) -> bool:
    return deadline is not None and time.time() > deadline


def _partition_from_ref(state: _WorkerState, ref: PartitionRef,
                        n_rows: int) -> StrippedPartition:
    name, rows_off, rows_len, offs_off, offs_len = ref
    reader = state.reader(name)
    return StrippedPartition.from_flat(
        reader.raw(rows_off, rows_len),
        reader.raw(offs_off, offs_len), n_rows)


def _handle_products(state: _WorkerState, payload: dict) -> dict:
    out_name, out_layout = payload["out"]
    n_rows = payload["n_rows"]
    deadline = payload["deadline"]
    out_reader = state.reader(out_name)
    refs: Dict[int, PartitionRef] = payload["parents"]
    parents: Dict[int, StrippedPartition] = {}

    def parent(mask: int) -> StrippedPartition:
        partition = parents.get(mask)
        if partition is None:
            partition = _partition_from_ref(state, refs[mask], n_rows)
            parents[mask] = partition
        return partition

    done: List[Tuple[int, int, int]] = []
    timed_out = False
    for child, left, right in payload["tasks"]:
        if _past(deadline):
            timed_out = True
            break
        product = parent(left).product(parent(right))
        rows_view = out_reader.array(out_layout, (child, "r"))
        offsets_view = out_reader.array(out_layout, (child, "o"))
        rows_view[:len(product.rows)] = product.rows
        offsets_view[:len(product.offsets)] = product.offsets
        done.append((child, len(product.rows), len(product.offsets)))
    return {"done": done, "timed_out": timed_out}


def _scan_verdict(mode: str, columns: List[np.ndarray], a: int, b: int,
                  context: Optional[StrippedPartition]) -> bool:
    """Worker-side twin of the coordinator kernels: one shared mode
    dispatch, so unknown modes fail loudly at any worker count."""
    from repro.core.validation import scan_verdict

    return scan_verdict(mode, columns, a, b, context)


def _handle_scans(state: _WorkerState, payload: dict) -> dict:
    columns = state.columns(payload["columns"])
    refs: Dict[Hashable, PartitionRef] = payload["contexts"]
    n_rows = payload["columns"][2]
    deadline = payload["deadline"]
    # one partition object per context key, so derived state (class
    # ids, cached expansions) is shared by every task scanning it
    contexts: Dict[Hashable, StrippedPartition] = {}
    verdicts: List[Tuple[Hashable, bool]] = []
    timed_out = False
    for key, context_key, mode, a, b in payload["tasks"]:
        if _past(deadline):
            timed_out = True
            break
        context = contexts.get(context_key)
        if context is None:
            context = _partition_from_ref(state, refs[context_key],
                                          n_rows)
            contexts[context_key] = context
        verdicts.append((key, _scan_verdict(mode, columns, a, b, context)))
    return {"verdicts": verdicts, "timed_out": timed_out}


def _handle_validations(state: _WorkerState, payload: dict) -> dict:
    cache = state.partition_cache(payload["columns"])
    columns = cache.relation.ranks
    deadline = payload["deadline"]
    verdicts: List[Tuple[Hashable, bool]] = []
    timed_out = False
    for key, mask, mode, a, b in payload["tasks"]:
        if _past(deadline):
            timed_out = True
            break
        context = None if mode == "pointwise" else cache.get(mask)
        verdicts.append((key, _scan_verdict(mode, columns, a, b, context)))
    return {"verdicts": verdicts, "timed_out": timed_out}


_HANDLERS = {
    "products": _handle_products,
    "scans": _handle_scans,
    "validations": _handle_validations,
}


def _run_task_observed(state: _WorkerState, kind: str, payload: dict,
                       obs_ctx: dict) -> dict:
    """Run one chunk under worker-local observability.

    Everything the coordinator cannot see from its side of the queue
    is captured here: a private span ring rooted in a ``task`` span
    (kernel calls and shm attaches land under it), the ambient
    sampling profiler's per-task count delta, and a ``getrusage``
    delta — exported on the result dict as ``"_obs"`` together with
    the worker-clock ``(enter, exit)`` edges the coordinator needs to
    rebase the spans onto its own monotonic epoch.

    Only runs when the dispatching coordinator attached an ``"obs"``
    context to the payload — under ``REPRO_OBS=0`` no context is ever
    attached and tasks take the bare path with zero extra payload
    bytes in either direction.
    """
    enter = time.perf_counter()
    ru0 = resource.getrusage(resource.RUSAGE_SELF)
    prof = profiler.ambient()
    profile_base = prof.counts()
    buffer = trace.TraceBuffer(capacity=_WORKER_SPAN_CAPACITY,
                               trace_id=obs_ctx.get("trace_id"))
    kernels.set_kernel_spans(True)
    try:
        with trace.collect(buffer):
            with trace.span("task", kind=kind, pid=os.getpid(),
                            tasks=len(payload.get("tasks", ()))):
                with kernels.activate(payload.get("kernels")):
                    result = _HANDLERS[kind](state, payload)
    finally:
        kernels.set_kernel_spans(False)
    prof.sample_once()
    ru1 = resource.getrusage(resource.RUSAGE_SELF)
    result["_obs"] = {
        "spans": buffer.export(),
        "clock": (enter, time.perf_counter()),
        "rusage": (ru1.ru_utime - ru0.ru_utime,
                   ru1.ru_stime - ru0.ru_stime,
                   accounting.maxrss_bytes(ru1.ru_maxrss)),
        "profile": profiler.subtract(prof.counts(), profile_base),
        "pid": os.getpid(),
    }
    return result


def _worker_main(task_queue, result_queue) -> None:
    state = _WorkerState()
    while True:
        message = task_queue.get()
        if message is None:
            break
        task_id, kind, payload = message
        started = time.process_time()
        try:
            faults.maybe_raise("worker.task",
                               f"injected failure in {kind!r} handler")
            obs_ctx = payload.get("obs")
            if obs_ctx is not None:
                result = _run_task_observed(state, kind, payload,
                                            obs_ctx)
            else:
                # run the chunk under the coordinator-resolved kernel
                # backend, so verdicts are computed by the same
                # kernels at every worker count
                with kernels.activate(payload.get("kernels")):
                    result = _HANDLERS[kind](state, payload)
        except BaseException:
            result_queue.put(
                (task_id, "err", traceback.format_exc(), 0.0))
            continue
        result_queue.put(
            (task_id, "ok", result, time.process_time() - started))
    for reader in state.readers.values():
        reader.close()


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
def _shutdown_static(processes: List, task_queue, block_names: set,
                     arenas: Optional[List] = None) -> None:
    """Idempotent teardown shared by shutdown(), GC and atexit.

    ``arenas`` holds the refcounted column arenas this pool adopted
    (see :mod:`repro.kernels.ingest`); each gets exactly one release —
    the arena unlinks itself once every holder has let go.
    """
    try:
        for _ in processes:
            try:
                task_queue.put_nowait(None)
            except Exception:
                break
    except Exception:  # pragma: no cover
        pass
    for process in processes:
        process.join(timeout=1.0)
    for process in processes:
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
    processes.clear()
    for name in list(block_names):
        unlink_by_name(name)
        block_names.discard(name)
    while arenas:
        arena = arenas.pop()
        try:
            arena.release()
        except Exception:  # pragma: no cover - release is best-effort
            pass


class WorkerPool:
    """Shared-memory process pool bound to one encoded relation.

    ``with WorkerPool(encoded, workers=4) as pool: ...`` — or call
    :meth:`shutdown` explicitly.  The pool is *persistent*: one set of
    workers serves every level of a discovery run (and every run that
    reuses the pool), with the rank columns published exactly once.
    """

    def __init__(self, relation: EncodedRelation, workers: int,
                 start_method: Optional[str] = None,
                 n_chunks_per_dispatch: Optional[int] = None,
                 stall_timeout: Optional[float] = None,
                 kernel_backend: Optional[str] = None):
        if workers < 1:
            raise ValueError("workers must be a positive integer")
        self._relation = relation
        self.workers = workers
        #: kernels backend name stamped into every chunk payload;
        #: ``None`` resolves to the coordinator's active backend at
        #: dispatch time, so serial and pooled kernels always agree
        self.kernel_backend = kernel_backend
        #: seconds without any dispatch progress (no result, workers
        #: all alive) before the dispatch fails with a typed
        #: :class:`WorkerStallError` instead of hanging on a lost
        #: queue message.  ``None`` (the default) never stalls out —
        #: legitimate tasks may run arbitrarily long.
        self.stall_timeout = stall_timeout
        #: chunk count per dispatch; overriding it decouples chunk
        #: granularity from the worker count (the benchmark's
        #: work-distribution projection measures N-worker chunks in one
        #: uncontended worker)
        self.n_chunks_per_dispatch = (
            workers * CHUNKS_PER_WORKER if n_chunks_per_dispatch is None
            else max(1, n_chunks_per_dispatch))
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        self._ctx = mp.get_context(start_method)
        self._processes: List = []
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._next_task_id = 0
        self._live_blocks: set = set()
        #: recently published partition blocks, oldest first; partitions
        #: carry ``_shm_ref`` pointers into them so one publication
        #: serves products one level up and OCD scans two levels up
        self._partition_blocks: "OrderedDict[str, SharedArrayBlock]" = \
            OrderedDict()
        #: per-dispatch telemetry: kind, tasks, chunks, per-chunk busy
        #: CPU seconds, publish seconds, wall seconds — the currency of
        #: the hardware-independent benchmark gate
        self.dispatches: List[Dict[str, object]] = []
        self._columns_block: Optional[SharedArrayBlock] = None
        self._columns_arena = None
        #: adopted column arenas still holding our reference; shared
        #: with the finalizer so GC/crash teardown releases them too
        self._adopted_arenas: List = []
        self._columns_descriptor = None
        self._closed = False
        self._publish_columns()
        self._finalizer = weakref.finalize(
            self, _shutdown_static, self._processes, self._task_queue,
            self._live_blocks, self._adopted_arenas)

    # -- lifecycle -----------------------------------------------------
    @property
    def relation(self) -> EncodedRelation:
        return self._relation

    def _publish_columns(self) -> None:
        """Make the relation's rank columns reachable by workers.

        Preferred path: adopt the relation's refcounted shared arena
        (:meth:`EncodedRelation.shared_arena`) — if another pool over
        the same relation already published one, this is zero-copy and
        the two pools share a single segment.  The legacy per-pool
        block publish remains as the fallback when the arena cannot be
        built (e.g. no shared-memory support on the platform).
        """
        relation = self._relation
        old_block = self._columns_block
        old_arena = self._columns_arena
        arena = None
        try:
            reused = relation.has_live_arena()
            arena = relation.shared_arena()
        except Exception:
            arena = None
        if arena is not None:
            self._columns_arena = arena
            self._adopted_arenas.append(arena)
            self._columns_block = None
            self._columns_descriptor = arena.descriptor()
            if reused:
                _ZERO_COPY_BYTES.inc(arena.nbytes)
            else:
                _SHM_BYTES.inc(arena.nbytes, payload="columns")
        else:  # pragma: no cover - exercised via injection in tests
            block = SharedArrayBlock.publish(relation.rank_arrays())
            _SHM_BYTES.inc(block.nbytes, payload="columns")
            self._live_blocks.add(block.name)
            self._columns_block = block
            self._columns_arena = None
            self._columns_descriptor = (
                block.name, block.layout, relation.n_rows, relation.arity)
        if old_block is not None:
            self._live_blocks.discard(old_block.name)
            old_block.close_and_unlink()
        if old_arena is not None:
            self._release_arena(old_arena)

    def _release_arena(self, arena) -> None:
        try:
            self._adopted_arenas.remove(arena)
        except ValueError:  # pragma: no cover - already released
            return
        arena.release()

    def rebase(self, relation: EncodedRelation) -> None:
        """Point the pool at a grown relation (the incremental append
        path): republish the columns and drop every retained partition
        block (their row universe is stale); workers re-attach lazily
        on their next task and drop stale mappings."""
        self._relation = relation
        self._publish_columns()
        while self._partition_blocks:
            _, block = self._partition_blocks.popitem(last=False)
            self._live_blocks.discard(block.name)
            block.close_and_unlink()

    def _retain(self, block: SharedArrayBlock) -> None:
        self._partition_blocks[block.name] = block
        self._live_blocks.add(block.name)
        while len(self._partition_blocks) > RETAINED_PARTITION_BLOCKS:
            _, stale = self._partition_blocks.popitem(last=False)
            self._live_blocks.discard(stale.name)
            stale.close_and_unlink()

    def _ensure_shared(self, partitions: Dict[Hashable, StrippedPartition]
                       ) -> Dict[Hashable, PartitionRef]:
        """Shared-memory refs for ``partitions``, publishing the ones
        (in one batch block) that have no live replica yet."""
        refs: Dict[Hashable, PartitionRef] = {}
        missing: Dict[Hashable, StrippedPartition] = {}
        for key, partition in partitions.items():
            ref = partition._shm_ref
            if ref is not None and ref[0] in self._partition_blocks:
                refs[key] = ref
            else:
                missing[key] = partition
        if missing:
            arrays: Dict[Hashable, np.ndarray] = {}
            for key, partition in missing.items():
                arrays[(key, "r")] = partition.rows
                arrays[(key, "o")] = partition.offsets
            block = SharedArrayBlock.publish(arrays)
            _SHM_BYTES.inc(block.nbytes, payload="partitions")
            self._retain(block)
            for key, partition in missing.items():
                rows_off, rows_len = block.layout[(key, "r")]
                offs_off, offs_len = block.layout[(key, "o")]
                ref = (block.name, rows_off, rows_len, offs_off, offs_len)
                partition._shm_ref = ref
                refs[key] = ref
        return refs

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` ran (including the error-path
        teardown after a crash); a closed pool never restarts — holders
        drop it and build a fresh one."""
        return self._closed

    def _ensure_started(self) -> None:
        if self._closed:
            raise WorkerCrashError(
                "the worker pool has been shut down; create a new one")
        if self._processes:
            return
        for index in range(self.workers):
            process = self._ctx.Process(
                target=_worker_main,
                args=(self._task_queue, self._result_queue),
                name=f"repro-worker-{index}", daemon=True)
            process.start()
            self._processes.append(process)

    def shutdown(self) -> None:
        """Terminate workers and unlink every live segment (idempotent).

        The pool is unusable afterwards (:attr:`closed`); stale
        partition refs are dropped so nothing can resolve against the
        unlinked segments."""
        self._closed = True
        _shutdown_static(self._processes, self._task_queue,
                         self._live_blocks, self._adopted_arenas)
        self._partition_blocks.clear()
        self._columns_block = None
        self._columns_arena = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- dispatch machinery --------------------------------------------
    def _submit(self, kind: str, payload: dict) -> int:
        task_id = self._next_task_id
        self._next_task_id += 1
        faults.maybe_sleep("pool.queue.delay")
        if faults.fire("pool.queue.drop"):
            # the chunk vanishes off the queue; with a stall_timeout
            # the dispatch surfaces this as WorkerStallError
            return task_id
        self._task_queue.put((task_id, kind, payload))
        return task_id

    def _check_alive(self) -> None:
        for process in self._processes:
            if not process.is_alive():
                raise WorkerCrashError(
                    f"worker {process.name} died "
                    f"(exitcode {process.exitcode})")

    def _kill_one_worker(self) -> None:
        """Chaos hook: SIGKILL the first live worker mid-dispatch."""
        for process in self._processes:
            if process.is_alive() and process.pid is not None:
                os.kill(process.pid, signal.SIGKILL)
                return

    def _drain_nowait(self, results: Dict[int, Tuple[dict, float]],
                      pending: set) -> None:
        """Best-effort harvest of results already on the queue (the
        crash path runs this so acknowledged work is not re-run)."""
        while True:
            try:
                message = self._result_queue.get_nowait()
            except (queue.Empty, OSError):
                return
            task_id, status, payload, busy = message
            if status == "ok" and task_id in pending:
                pending.discard(task_id)
                results[task_id] = (payload, busy)

    def _collect(self, pending: set,
                 ack_times: Optional[Dict[int, float]] = None
                 ) -> Dict[int, Tuple[dict, float]]:
        results: Dict[int, Tuple[dict, float]] = {}
        last_progress = time.monotonic()
        while pending:
            try:
                message = self._result_queue.get(timeout=0.2)
            except queue.Empty:
                try:
                    self._check_alive()
                except WorkerCrashError as crash:
                    self._drain_nowait(results, pending)
                    crash.partial_results = [
                        payload for payload, _ in results.values()]
                    raise
                if (self.stall_timeout is not None
                        and time.monotonic() - last_progress
                        > self.stall_timeout):
                    raise WorkerStallError(
                        f"dispatch made no progress for "
                        f"{self.stall_timeout:.1f}s with {len(pending)} "
                        f"chunk(s) outstanding (lost queue message?)",
                        partial_results=[
                            payload for payload, _ in results.values()])
                continue
            last_progress = time.monotonic()
            task_id, status, payload, busy = message
            if ack_times is not None:
                # the coordinator-side ack edge of this chunk: one half
                # of the clock-rebase window worker spans are spliced on
                ack_times[task_id] = time.perf_counter()
            if status == "err":
                raise WorkerTaskError(
                    f"a parallel task failed in a worker:\n{payload}",
                    partial_results=[
                        p for p, _ in results.values()])
            if task_id in pending:
                pending.discard(task_id)
                results[task_id] = (payload, busy)
        return results

    def _dispatch(self, kind: str,
                  payloads: Sequence[dict]) -> List[Tuple[dict, float]]:
        """Run chunk payloads across the pool; any failure — a worker
        crash, a remote exception, or a coordinator-side interrupt —
        tears the pool down before propagating, so no segment leaks.
        Crash-shaped failures carry the already-acknowledged chunk
        payloads (:attr:`PoolDispatchError.partial_results`) so the
        recovery layer re-runs only the lost tasks."""
        self._ensure_started()
        started = time.perf_counter()
        with trace.span("pool-dispatch", kind=kind,
                        chunks=len(payloads)):
            # short-circuit *before* serialization: under REPRO_OBS=0
            # no obs context rides out and no span/rusage export rides
            # back — worker payloads stay byte-for-byte lean
            obs_on = metrics.enabled()
            submit_times: Dict[int, float] = {}
            ack_times: Dict[int, float] = {}
            if obs_on:
                obs_ctx = {
                    "trace_id": trace.current_buffer().trace_id,
                    "span": trace.current_span_id(),
                }
                for payload in payloads:
                    payload["obs"] = obs_ctx
            try:
                # fail fast if a worker already died: a silently
                # shrunken pool would still drain the queue, degraded
                self._check_alive()
                pending = set()
                for payload in payloads:
                    task_id = self._submit(kind, payload)
                    submit_times[task_id] = time.perf_counter()
                    pending.add(task_id)
                if faults.fire("pool.worker.kill"):
                    self._kill_one_worker()
                ordered = sorted(pending)
                results = self._collect(
                    pending, ack_times if obs_on else None)
            except BaseException as error:
                if isinstance(error, WorkerStallError):
                    _CRASHES.inc(shape="stall")
                elif isinstance(error, WorkerTaskError):
                    _CRASHES.inc(shape="task-error")
                elif isinstance(error, WorkerCrashError):
                    _CRASHES.inc(shape="crash")
                else:
                    _CRASHES.inc(shape="interrupt")
                self.shutdown()
                raise
            if obs_on:
                self._absorb_obs(results, submit_times, ack_times,
                                 started)
        wall = time.perf_counter() - started
        busy = [results[i][1] for i in ordered]
        # the coordinator-observed queueing overhead: everything the
        # dispatch spent beyond its busiest chunk's kernel time
        # (queue put/get, pickling, worker pickup latency)
        queue_wait = max(0.0, wall - (max(busy) if busy else 0.0))
        record = {
            "kind": kind,
            "n_tasks": sum(len(p["tasks"]) for p in payloads),
            "n_chunks": len(payloads),
            "chunk_busy_seconds": busy,
            "wall_seconds": wall,
            "queue_wait_seconds": queue_wait,
        }
        _DISPATCHES.inc(kind=kind)
        _DISPATCH_SECONDS.observe(wall, kind=kind)
        _QUEUE_WAIT_SECONDS.observe(queue_wait)
        self.dispatches.append(record)
        if len(self.dispatches) > MAX_DISPATCH_RECORDS:
            del self.dispatches[:len(self.dispatches)
                                - MAX_DISPATCH_RECORDS]
        return [results[i][0] for i in ordered]

    def _absorb_obs(self, results: Dict[int, Tuple[dict, float]],
                    submit_times: Dict[int, float],
                    ack_times: Dict[int, float],
                    started: float) -> None:
        """Fold each chunk's worker-shipped ``"_obs"`` export into the
        coordinator's observability state.

        Runs *inside* the open ``pool-dispatch`` span: worker spans
        are spliced under it with their clocks rebased against the
        chunk's own submit/ack edges, and worker rusage/profile deltas
        are billed to the current job's resource account.  The export
        is popped off the result payload so callers never see it.
        """
        buffer = trace.current_buffer()
        parent = trace.current_span_id()
        account = accounting.current()
        now = time.perf_counter()
        for task_id, (payload, _busy) in results.items():
            if not isinstance(payload, dict):
                continue
            obs = payload.pop("_obs", None)
            if not obs:
                continue
            window = (submit_times.get(task_id, started),
                      ack_times.get(task_id, now))
            trace.splice(buffer, obs.get("spans") or (), parent,
                         window, clock=obs.get("clock"))
            if account is not None and obs.get("rusage") is not None:
                utime, stime, maxrss = obs["rusage"]
                account.add_worker(utime, stime, maxrss,
                                   obs.get("pid", 0),
                                   profile=obs.get("profile"))

    def _payload_kernels(self) -> str:
        """The kernel backend name stamped into chunk payloads: the
        pool's pinned backend, else whatever backend is active on the
        coordinator right now (resolved, not ``"auto"`` — workers must
        not re-decide)."""
        if self.kernel_backend:
            return kernels.resolve_backend(self.kernel_backend).name
        return kernels.active_backend_name()

    @staticmethod
    def _wall_deadline(deadline: Optional[float]) -> Optional[float]:
        """Translate a coordinator ``perf_counter`` deadline into the
        wall-clock currency workers can compare against."""
        if deadline is None:
            return None
        return time.time() + (deadline - time.perf_counter())

    # -- level operations ----------------------------------------------
    def run_products(self, parents: Dict[int, StrippedPartition],
                     triples: Sequence[Tuple[int, int, int]],
                     deadline: Optional[float] = None
                     ) -> Tuple[Dict[int, StrippedPartition], bool]:
        """Compute ``Π_left · Π_right`` for every ``(child, left,
        right)`` triple, sharded across workers.  Returns the products
        plus a flag set when the cooperative ``deadline`` cut workers
        short (the dict then covers a subset of the triples).

        Parents are referenced by their live shared replicas (published
        in batch only if missing — typically just the level-1
        singletons, since later parents were themselves produced here).
        Results come back through a pre-allocated writable block sized
        by the product bound ``||Π_X·Π_Y|| <= min(||Π_X||, ||Π_Y||)``;
        the coordinator copies them onto the heap and tags each copy
        with a ref into the retained block, so the next two levels
        (products, then OCD scans) reuse the replica without another
        publish.
        """
        # contiguous chunks of (left, right)-sorted tasks keep each
        # parent's derived probe tables (row_to_class) inside as few
        # chunks as possible — workers rebuild them per chunk
        triples = sorted(triples, key=lambda t: (t[1], t[2]))
        needed = {left for _, left, _ in triples}
        needed.update(right for _, _, right in triples)
        publish_started = time.perf_counter()
        parent_refs = self._ensure_shared(
            {mask: parents[mask] for mask in needed})
        capacities: Dict[Hashable, int] = {}
        for child, left, right in triples:
            bound = min(len(parents[left].rows), len(parents[right].rows))
            capacities[(child, "r")] = bound
            capacities[(child, "o")] = bound // 2 + 2
        out_block = SharedArrayBlock.allocate(capacities)
        _SHM_BYTES.inc(out_block.nbytes, payload="products")
        self._retain(out_block)
        publish_seconds = time.perf_counter() - publish_started
        wall_deadline = self._wall_deadline(deadline)

        payloads = []
        for start, stop in _chunk_slices(
                len(triples), self.n_chunks_per_dispatch):
            chunk = list(triples[start:stop])
            chunk_parents = {mask: parent_refs[mask]
                             for _, left, right in chunk
                             for mask in (left, right)}
            out_keys = [key for child, _, _ in chunk
                        for key in ((child, "r"), (child, "o"))]
            payloads.append({
                "parents": chunk_parents,
                "out": out_block.descriptor(out_keys),
                "n_rows": self._relation.n_rows,
                "tasks": chunk,
                "deadline": wall_deadline,
                "kernels": self._payload_kernels(),
            })
        chunk_results = self._dispatch("products", payloads)
        self.dispatches[-1]["publish_seconds"] = publish_seconds
        products: Dict[int, StrippedPartition] = {}
        timed_out = False
        n_rows = self._relation.n_rows
        for result in chunk_results:
            timed_out |= result["timed_out"]
            for child, rows_len, offsets_len in result["done"]:
                rows_off, _cap = out_block.layout[(child, "r")]
                offs_off, _ocap = out_block.layout[(child, "o")]
                rows = np.array(out_block.raw(rows_off, rows_len))
                offsets = np.array(out_block.raw(offs_off, offsets_len))
                partition = StrippedPartition.from_flat(
                    rows, offsets, n_rows)
                partition._shm_ref = (out_block.name, rows_off, rows_len,
                                      offs_off, offsets_len)
                products[child] = partition
        return products, timed_out

    def run_scans(self, contexts: Dict[Hashable, StrippedPartition],
                  tasks: Sequence[ScanTask],
                  deadline: Optional[float] = None
                  ) -> Tuple[Dict[Hashable, bool], bool]:
        """Validation scans over published context partitions.

        ``tasks`` are ``(key, context_key, mode, a, b)`` with mode
        ``"swap"`` (OCD) or ``"const"`` (FD); returns per-key verdicts
        plus a flag set when the cooperative deadline cut workers short
        (verdicts then cover a prefix of each chunk).

        Contexts with a live shared replica (anything a products
        dispatch built two levels ago) are referenced in place; only
        the rest are published.  Tasks are grouped by context before
        chunking so each worker rebuilds a context's derived state at
        most once.
        """
        publish_started = time.perf_counter()
        context_refs = self._ensure_shared(contexts)
        publish_seconds = time.perf_counter() - publish_started
        wall_deadline = self._wall_deadline(deadline)
        tasks = sorted(tasks, key=lambda t: (repr(t[1]), repr(t[0])))
        payloads = []
        for start, stop in _chunk_slices(
                len(tasks), self.n_chunks_per_dispatch):
            chunk = list(tasks[start:stop])
            payloads.append({
                "columns": self._columns_descriptor,
                "contexts": {context_key: context_refs[context_key]
                             for _, context_key, _, _, _ in chunk},
                "tasks": chunk,
                "deadline": wall_deadline,
                "kernels": self._payload_kernels(),
            })
        chunk_results = self._dispatch("scans", payloads)
        self.dispatches[-1]["publish_seconds"] = publish_seconds
        verdicts: Dict[Hashable, bool] = {}
        timed_out = False
        for result in chunk_results:
            timed_out |= result["timed_out"]
            verdicts.update(result["verdicts"])
        return verdicts, timed_out

    def run_validations(self, tasks: Sequence[Tuple[Hashable, int, str,
                                                    int, int]],
                        deadline: Optional[float] = None
                        ) -> Tuple[Dict[Hashable, bool], bool]:
        """Ad-hoc context validation (the hybrid escalation waves):
        ``(key, context_mask, mode, a, b)`` tasks; workers derive the
        context partition from their own shared-column
        :class:`PartitionCache`."""
        wall_deadline = self._wall_deadline(deadline)
        payloads = [{
            "columns": self._columns_descriptor,
            "tasks": list(tasks[start:stop]),
            "deadline": wall_deadline,
            "kernels": self._payload_kernels(),
        } for start, stop in _chunk_slices(
            len(tasks), self.n_chunks_per_dispatch)]
        chunk_results = self._dispatch("validations", payloads)
        self.dispatches[-1]["publish_seconds"] = 0.0
        verdicts: Dict[Hashable, bool] = {}
        timed_out = False
        for result in chunk_results:
            timed_out |= result["timed_out"]
            verdicts.update(result["verdicts"])
        return verdicts, timed_out

    def run_class_scan(self, mode: str, a: int, b: int,
                       partition: StrippedPartition,
                       deadline: Optional[float] = None
                       ) -> Tuple[bool, bool]:
        """One big scan sharded by context class (the single-dependency
        path behind ``check``/``violations`` and incremental
        revalidation).  Classes are split into contiguous chunks of
        near-equal grouped rows; each chunk is a valid stripped
        partition in its own right, so workers run the stock kernels.
        Returns ``(verdict, timed_out)``."""
        offsets = partition.offsets
        n_chunks = max(1, min(self.workers * 2, partition.n_classes))
        targets = np.linspace(0, len(partition.rows), n_chunks + 1)
        bounds = np.unique(np.searchsorted(offsets, targets[1:-1]))
        class_bounds = [0, *[int(b) for b in bounds], partition.n_classes]
        contexts: Dict[Hashable, StrippedPartition] = {}
        tasks: List[ScanTask] = []
        for index in range(len(class_bounds) - 1):
            lo, hi = class_bounds[index], class_bounds[index + 1]
            if lo >= hi:
                continue
            chunk = StrippedPartition.from_flat(
                partition.rows[offsets[lo]:offsets[hi]],
                offsets[lo:hi + 1] - offsets[lo], partition.n_rows)
            contexts[index] = chunk
            tasks.append((index, index, mode, a, b))
        if not tasks:
            return True, False
        verdicts, timed_out = self.run_scans(contexts, tasks, deadline)
        return all(verdicts.values()), timed_out

    # -- reporting ------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Aggregate dispatch telemetry (see also :attr:`dispatches`)."""
        busy = [s for d in self.dispatches
                for s in d["chunk_busy_seconds"]]
        return {
            "workers": self.workers,
            "n_dispatches": len(self.dispatches),
            "n_tasks": sum(d["n_tasks"] for d in self.dispatches),
            "n_chunks": sum(d["n_chunks"] for d in self.dispatches),
            "busy_seconds": sum(busy),
            "wall_seconds": sum(d["wall_seconds"]
                                for d in self.dispatches),
            "queue_wait_seconds": sum(
                d.get("queue_wait_seconds", 0.0)
                for d in self.dispatches),
        }


class ClassScanPool:
    """Legacy shim over the engine executors' class-sharded scan gate.

    Historically this class owned the "serial kernel below the
    thresholds, lazily pooled :meth:`WorkerPool.run_class_scan`
    above" decision for :class:`repro.core.validation
    .CanonicalValidator`, the violation detector, and the incremental
    append path.  Those consumers now build an executor via
    :func:`repro.engine.make_executor`; this wrapper delegates to the
    same code so the policy (including crashed-pool rebuild) exists
    exactly once.  New code should use the executor directly.
    """

    def __init__(self, relation: EncodedRelation,
                 workers: Optional[int],
                 threshold: Optional[int] = None):
        from repro.engine.executors import make_executor

        self.workers = resolve_workers(workers)
        self._executor = make_executor(relation, workers=workers,
                                       min_grouped_rows=threshold)

    @property
    def relation(self) -> EncodedRelation:
        return self._executor.relation

    def rebase(self, relation: EncodedRelation) -> None:
        """Follow a grown relation (incremental appends)."""
        self._executor.rebase(relation)

    def close(self) -> None:
        self._executor.close()

    def scan(self, mode: str, a: int, b: int,
             partition: StrippedPartition) -> bool:
        """Verdict of one ``"swap"``/``"const"`` scan over
        ``partition`` — pooled when big enough, serial otherwise."""
        return self._executor.scan_partition(mode, a, b, partition)


