"""Incremental discovery: delta-maintained partitions and OD sets.

The append-only counterpart to :mod:`repro.core.fastod`: batches are
folded into maintained groupings and per-class validation state instead
of re-running discovery from scratch (see DESIGN.md, "Incremental
architecture").
"""

from repro.incremental.delta import BatchEffect, DeltaPartition, GroupTracker
from repro.incremental.engine import BatchReport, IncrementalFastOD

__all__ = [
    "BatchEffect",
    "BatchReport",
    "DeltaPartition",
    "GroupTracker",
    "IncrementalFastOD",
]
