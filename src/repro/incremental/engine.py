"""Incremental FASTOD: keep the discovered OD set fresh under appends.

A from-scratch FASTOD run re-sorts every partition and re-scans every
candidate even though an appended batch can only *shrink* the set of
valid ODs (a violating tuple pair, once present, never goes away).
:class:`IncrementalFastOD` exploits that monotonicity:

* **verdicts are monotone** — a refuted candidate (FD or OCD) stays
  refuted forever, so False verdicts are cached and never re-examined;
* **held ODs are maintained, not re-validated** — every emitted FD is
  re-checked per batch through O(1) maintained partition measures
  (``e(X \\ A) = e(X)`` off :class:`repro.incremental.delta.GroupTracker`
  counters), and every emitted OCD carries per-class interval state
  (:class:`repro.violations.monitor.OcdClassState`, the ODMonitor
  machinery keyed by stable group ids) fed only the batch rows that
  landed in its context classes — O(log k) per row instead of a
  re-scan;
* **only the load-bearing groupings are kept current** — the tracker
  chains behind the currently-held ODs are synced every batch; every
  other grouping goes stale and catches up in one combined span if a
  later traversal actually consults it;
* the lattice **traversal re-runs only when a verdict flipped**: if a
  batch invalidated nothing, the previous result is carried over
  verbatim; otherwise the shared
  :class:`~repro.engine.LatticePlanner` re-runs the level-wise sweep
  against the verdict caches (a :class:`_CacheBackend` answers its
  typed tasks), paying full validation only for candidates that became
  reachable because an invalidated OD stopped pruning them.

General deltas (:meth:`IncrementalFastOD.apply_delta`) extend the
model to row retractions and updates via weighted
:class:`~repro.deltalog.DeltaBatch` ops.  Deletes are the *dual* of
appends: removing rows can never create a violating or swapped pair,
so every **True** verdict survives a retraction, and a **False**
verdict survives exactly when its *witness* — the concrete violating
or swapped row pair, recorded lazily just before the first retraction
that needs it — is untouched by the deletion (a violation is a
property of its two rows alone).  A delete-only batch retracts and
re-traverses: held FD keys are kept verbatim, held OCD keys move to a
scan-free reseed set, witnessed False verdicts are remapped, and only
witnessless False verdicts re-validate (demoted OCDs whose violating
rows are gone come back).  A mixed batch folds deletes and inserts
into the snapshot together and traverses *once* over the final
relation, trading the reseed trust (only sound pre-insert) for plain
re-scans of the handful of held OCDs.

After every batch the engine's FD/OCD sets are identical to what a
from-scratch run on the current relation would produce (the
``verify_with_oracle`` flag asserts exactly that, and the property
tests in ``tests/incremental`` enforce it — including arbitrary
interleaved insert/delete/update sequences).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.candidates import LatticeNode
from repro.core.fastod import FastOD, FastODConfig
from repro.core.validation import find_split, find_swap
from repro.core.results import DiscoveryResult, diff_results
from repro.engine.budget import DeadlineBudget
from repro.engine.executors import make_executor
from repro.engine.planner import LatticePlanner, TraversalBackend
from repro.engine.tasks import FdCheckTask, OcdScanTask
from repro.engine.telemetry import build_timings
from repro.errors import DataError
from repro.incremental.delta import BatchEffect, DeltaPartition, GroupTracker
from repro.relation.encoding import sort_key
from repro.relation.schema import bit_count
from repro.relation.table import Relation
from repro.violations.monitor import OcdClassState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deltalog import DeltaBatch

FdKey = Tuple[int, int]             # (context mask, node mask)
OcdKey = Tuple[int, int, int]       # (context mask, attr a, attr b)


@dataclass
class BatchReport:
    """What one applied batch (append or general delta) did to the
    discovered OD set."""

    batch_index: int
    n_appended: int
    n_rows: int
    invalidated: List[str] = field(default_factory=list)
    appeared: List[str] = field(default_factory=list)
    retraversed: bool = False
    seconds: float = 0.0
    result: Optional[DiscoveryResult] = None
    n_deleted: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "batch": self.batch_index,
            "n_appended": self.n_appended,
            "n_deleted": self.n_deleted,
            "n_rows": self.n_rows,
            "invalidated": list(self.invalidated),
            "appeared": list(self.appeared),
            "retraversed": self.retraversed,
            "seconds": self.seconds,
            "n_ods": self.result.n_ods if self.result else 0,
        }

    def __str__(self) -> str:
        changes = ""
        if self.invalidated:
            changes += f", -{len(self.invalidated)} invalidated"
        if self.appeared:
            changes += f", +{len(self.appeared)} newly minimal"
        ods = self.result.paper_counts() if self.result else "?"
        deleted = (f"/-{self.n_deleted}" if self.n_deleted else "")
        return (f"batch {self.batch_index}: +{self.n_appended}"
                f"{deleted} rows "
                f"({self.n_rows} total), ODs {ods}{changes}, "
                f"{self.seconds * 1000:.1f} ms")


class IncrementalFastOD:
    """FASTOD whose output is delta-maintained across appended batches.

    >>> from repro.relation.table import Relation
    >>> engine = IncrementalFastOD(Relation.from_rows(
    ...     ["a", "b"], [(1, 10), (2, 20)]))
    >>> engine.result.n_ods > 0
    True
    >>> report = engine.append([(3, 5)])      # a swap lands
    >>> "{}: a ~ b" in report.invalidated
    True
    """

    def __init__(self, relation: Relation,
                 config: Optional[FastODConfig] = None,
                 verify_with_oracle: bool = False,
                 pool=None):
        config = config or FastODConfig()
        if config.timeout_seconds is not None:
            raise ValueError(
                "IncrementalFastOD needs complete traversals to keep "
                "its snapshots consistent; timeout_seconds is not "
                "supported")
        self._config = config
        self._verify = verify_with_oracle
        self._relation = relation
        self._encoded = relation.encode()
        self._names = self._encoded.names
        self._arity = self._encoded.arity
        self._full_mask = (1 << self._arity) - 1
        self._columns = [relation.column_at(i) for i in range(self._arity)]
        keys = self._encoded.keys
        self._col_gids: List[np.ndarray] = [
            keys[a].gid_sorted[self._encoded.ranks[a]]
            if len(keys[a].gid_sorted) else np.empty(0, dtype=np.int64)
            for a in range(self._arity)
        ]
        self._trackers: Dict[int, GroupTracker] = {}
        self._delta_partitions: Dict[int, DeltaPartition] = {}
        # verdict caches: False is permanent, True carries maintenance
        # state and a place on the per-batch sync schedule.  A ``None``
        # state is a lazily-seeded placeholder: the verdict holds for
        # the current snapshot, and per-class interval state is built
        # just-in-time before the next insert batch (:meth:`_seed_pending`)
        self._fd_true: Set[FdKey] = set()
        self._fd_false: Set[FdKey] = set()
        self._ocd_true: Dict[OcdKey, Optional[OcdClassState]] = {}
        self._ocd_false: Set[OcdKey] = set()
        #: witness row pairs behind False verdicts — two physical rows
        #: whose violating/swapped pair refutes the candidate.  A
        #: violation is row-local (the pair agrees on the context and
        #: conflicts on the target regardless of every other row), so
        #: under a retraction a False verdict whose witness rows both
        #: survive is still exactly False and skips its re-check.
        #: Capture is deferred to the first retraction that needs it
        #: (:meth:`_retract` backfills unwitnessed False keys before
        #: rows drop) so append-only streams never pay for it;
        #: verdicts whose witness rows die re-validate on next consult
        self._fd_witness: Dict[FdKey, Tuple[int, int]] = {}
        self._ocd_witness: Dict[OcdKey, Tuple[int, int]] = {}
        #: OCD keys known True for the current snapshot whose per-class
        #: state must be rebuilt before use (a retraction re-encoded
        #: the relation, so the old group-id-keyed state is stale even
        #: though the verdict itself survived)
        self._ocd_reseed: Set[OcdKey] = set()
        self._live_ocds: Set[OcdKey] = set()
        self._needed_masks: List[int] = []
        self._batch_effects: Dict[int, BatchEffect] = {}
        self._sort_key_cols: Dict[int, List[tuple]] = {}
        self._n_batches = 0
        # an injected WorkerPool is shared with other engines (the
        # service job scheduler runs every job's scans on one pool) and
        # survives close(); an owned pool dies with this engine
        self._executor = make_executor(
            self._encoded, workers=config.workers, pool=pool,
            min_grouped_rows=config.parallel_min_grouped_rows)
        self._result = self._traverse()
        if self._verify:
            self._check_against_oracle(self._result)

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def relation(self) -> Relation:
        """The relation as of the last applied batch."""
        return self._relation

    @property
    def config(self) -> FastODConfig:
        """The config every maintained traversal runs under (fixed at
        construction — it is part of the maintained result's cache
        identity)."""
        return self._config

    @property
    def result(self) -> DiscoveryResult:
        """The discovered minimal OD set as of the last append."""
        return self._result

    @property
    def n_batches(self) -> int:
        return self._n_batches

    def close(self) -> None:
        """Shut down the append-path worker pool, if one was started."""
        self._executor.close()

    def executor_stats(self) -> Dict[str, object]:
        """Cumulative per-phase executor telemetry across batches."""
        return self._executor.telemetry.snapshot()

    def _scan_compatible(self, a: int, b: int, partition) -> bool:
        """One full swap scan through the engine executor —
        class-sharded over the worker pool when the context is big
        enough (``FastODConfig.workers`` / ``REPRO_WORKERS``); the pool
        persists across batches, following each grown relation via
        :meth:`repro.engine.PoolExecutor.rebase`."""
        self._executor.rebase(self._encoded)
        return self._executor.scan_partition("swap", a, b, partition)

    def append(self, batch: Union[Relation, Iterable[Sequence]]
               ) -> BatchReport:
        """Fold a batch of rows in and refresh the discovered set."""
        started = time.perf_counter()
        if isinstance(batch, Relation):
            if batch.names != self._names:
                raise DataError(
                    f"batch schema {batch.names} does not match "
                    f"{self._names}")
            rows = list(batch.rows())
        else:
            rows = [tuple(row) for row in batch]
        self._n_batches += 1
        previous = self._result
        if not rows:
            return BatchReport(
                self._n_batches, 0, self._encoded.n_rows,
                seconds=time.perf_counter() - started, result=previous)

        retraversed = self._apply_insert_rows(rows)
        if self._verify:
            self._check_against_oracle(self._result)

        before = {str(od) for od in previous.all_ods}
        after = {str(od) for od in self._result.all_ods}
        return BatchReport(
            self._n_batches, len(rows), self._encoded.n_rows,
            invalidated=sorted(before - after),
            appeared=sorted(after - before),
            retraversed=retraversed,
            seconds=time.perf_counter() - started,
            result=self._result)

    def apply_delta(self, delta: "DeltaBatch") -> BatchReport:
        """Fold a weighted :class:`~repro.deltalog.DeltaBatch` of
        inserts/deletes/updates in and refresh the discovered set.

        A delete-only batch retracts and re-traverses against the
        salvaged verdicts: True FDs kept verbatim, True OCDs reseeded
        scan-free, False verdicts kept exactly when their witness pair
        of violating rows survives (some flip back True now that the
        violating rows are gone, re-promoting demoted OCDs).  An
        insert-only batch rides the append fast path.  A mixed batch
        folds both sides into the snapshot first and traverses *once*
        over the final relation — the intermediate post-delete result
        is never materialized (held OCDs re-validate by scan there,
        since reseed trust only holds before the inserts land).
        """
        started = time.perf_counter()
        self._n_batches += 1
        previous = self._result
        delete_indices, insert_rows = delta.split(self._relation)
        if not delete_indices and not insert_rows:
            return BatchReport(
                self._n_batches, 0, self._encoded.n_rows,
                seconds=time.perf_counter() - started, result=previous)
        retraversed = False
        if delete_indices:
            # with inserts following, the post-delete snapshot is
            # never consulted: fold both sides in, traverse once
            self._retract(delete_indices, traverse=not insert_rows)
            retraversed = True
            if insert_rows:
                self._apply_insert_rows(insert_rows,
                                        force_traverse=True)
        elif insert_rows:
            retraversed = self._apply_insert_rows(insert_rows)
        if self._verify:
            self._check_against_oracle(self._result)

        before = {str(od) for od in previous.all_ods}
        after = {str(od) for od in self._result.all_ods}
        return BatchReport(
            self._n_batches, len(insert_rows), self._encoded.n_rows,
            invalidated=sorted(before - after),
            appeared=sorted(after - before),
            retraversed=retraversed,
            seconds=time.perf_counter() - started,
            result=self._result,
            n_deleted=len(delete_indices))

    def _apply_insert_rows(self, rows: List[tuple],
                           force_traverse: bool = False) -> bool:
        """The append fast path: grow the snapshot, sync the schedule,
        demote flipped verdicts, re-traverse only if anything flipped.
        Sets ``self._result``; returns whether a traversal ran.

        ``force_traverse`` is the second half of a combined
        delete+insert batch: the retraction skipped its traversal, so
        one must run here regardless of flips."""
        previous = self._result
        # lazily-deferred per-class states must exist before the new
        # rows land: seeding is only sound over a snapshot the verdict
        # is known to hold for
        self._seed_pending()
        n_old = self._relation.n_rows
        relation = self._relation.append_rows(rows)
        encoded = relation.encode()
        self._relation = relation
        self._encoded = encoded
        self._columns = [relation.column_at(i) for i in range(self._arity)]
        for a in range(self._arity):
            self._col_gids[a] = np.concatenate((
                self._col_gids[a],
                encoded.keys[a].gid_sorted[encoded.ranks[a][n_old:]]))
        for a, keys in self._sort_key_cols.items():
            keys.extend(sort_key(value)
                        for value in self._columns[a][n_old:])

        # keep the load-bearing groupings current and catch the effects
        self._batch_effects = {}
        for mask in self._needed_masks:
            self._sync(mask)

        ocd_flipped = self._demote_ocds()
        fd_flipped = self._demote_fds()

        retraversed = (force_traverse or bool(ocd_flipped)
                       or bool(fd_flipped))
        if retraversed:
            self._result = self._traverse()
        else:
            self._result = self._carry_result(previous)
        return retraversed

    def _retract(self, indices: List[int],
                 traverse: bool = True) -> None:
        """Drop rows and (by default) re-establish an exact result for
        the shrunk snapshot.

        Deletes preserve truth: removing rows cannot create a
        violating pair (FD) or a swap (OCD), so held FD keys are kept
        verbatim and held OCD keys move to ``_ocd_reseed`` — still
        True, but their per-class interval state is keyed by group ids
        the re-encoded snapshot no longer uses, so it is rebuilt
        scan-free (:meth:`_seed_state`) on next consult.  False
        verdicts survive exactly when their recorded witness pair does
        (:meth:`_salvage_false`): a split or swap is a property of the
        two rows alone, so if both rows are kept the verdict still
        holds — demoted OCDs whose violating rows are gone come back.
        Trackers, delta partitions, and sort keys rebuild lazily from
        the new snapshot.

        ``traverse=False`` is the combined delete+insert path: the
        caller folds insert rows in next and traverses once over the
        final snapshot.  Reseed trust ("a retraction cannot break an
        OCD") is only sound over the *post-delete* snapshot, so in
        this mode held OCD keys are simply forgotten and re-validated
        by scan during the final traversal.
        """
        # witness backfill happens here, not at falsification time:
        # append-only workloads never pay for it, and the pre-delete
        # snapshot still holds every violating pair a False verdict
        # was refuted on
        for fd_key in self._fd_false:
            if fd_key not in self._fd_witness:
                self._witness_fd(*fd_key)
        for ocd_key in self._ocd_false:
            if ocd_key not in self._ocd_witness:
                self._witness_ocd(*ocd_key)
        banned = set(indices)
        n_old = self._relation.n_rows
        kept = [i for i in range(n_old) if i not in banned]
        relation = self._relation.select_rows(kept)
        encoded = relation.encode()
        self._relation = relation
        self._encoded = encoded
        self._columns = [relation.column_at(i) for i in range(self._arity)]
        keys = encoded.keys
        self._col_gids = [
            keys[a].gid_sorted[encoded.ranks[a]]
            if len(keys[a].gid_sorted) else np.empty(0, dtype=np.int64)
            for a in range(self._arity)
        ]
        self._trackers = {}
        self._delta_partitions = {}
        # per-row sort keys survive a deletion (they are per-value);
        # rebuilding them through sort_key() is the expensive part
        self._sort_key_cols = {
            a: list(map(column_keys.__getitem__, kept))
            for a, column_keys in self._sort_key_cols.items()
        }
        self._batch_effects = {}
        if traverse:
            self._ocd_reseed.update(self._ocd_true)
        self._ocd_true = {}
        new_index = np.full(n_old, -1, dtype=np.int64)
        new_index[kept] = np.arange(len(kept), dtype=np.int64)
        self._fd_false = self._salvage_false(
            self._fd_false, self._fd_witness, new_index)
        self._ocd_false = self._salvage_false(
            self._ocd_false, self._ocd_witness, new_index)
        if traverse:
            self._executor.rebase(encoded)
            self._result = self._traverse()
        else:
            # held OCD state is gone; trim the per-batch schedule to
            # the FD chains before the insert half syncs it
            self._rebuild_schedule()

    # ------------------------------------------------------------------
    # tracked state
    # ------------------------------------------------------------------
    def _tracker(self, mask: int) -> GroupTracker:
        """The tracker for ``mask``, built from the current snapshot on
        first use (parents first)."""
        tracker = self._trackers.get(mask)
        if tracker is None:
            if mask == 0:
                tracker = GroupTracker.from_gids(
                    0, np.zeros(self._encoded.n_rows, dtype=np.int64))
            else:
                low = mask & -mask
                attribute = low.bit_length() - 1
                if mask == low:
                    tracker = GroupTracker.from_gids(
                        mask, self._col_gids[attribute])
                else:
                    tracker = GroupTracker.combine(
                        mask, self._sync(mask ^ low),
                        self._col_gids[attribute])
            self._trackers[mask] = tracker
        return tracker

    def _sync(self, mask: int) -> GroupTracker:
        """Bring a tracker (and its materialized partition) up to the
        current snapshot, replaying everything it missed as one span.

        Masks on the per-batch schedule advance exactly one batch at a
        time, so their recorded effect *is* that batch — which is what
        the OCD state maintenance feeds on.
        """
        tracker = self._tracker(mask)
        target = self._encoded.n_rows
        if tracker.n_rows == target:
            return tracker
        low = mask & -mask
        attribute = low.bit_length() - 1
        span = slice(tracker.n_rows, target)
        if mask == 0:
            attr_gids = np.zeros(target - tracker.n_rows, dtype=np.int64)
            parent: Optional[GroupTracker] = None
        elif mask == low:
            attr_gids = self._col_gids[attribute][span]
            parent = None
        else:
            parent = self._sync(mask ^ low)
            attr_gids = self._col_gids[attribute][span]
        effect = tracker.apply_batch(attr_gids, parent)
        self._batch_effects[mask] = effect
        delta = self._delta_partitions.get(mask)
        if delta is not None:
            delta.apply(effect)
        return tracker

    def _delta(self, mask: int) -> DeltaPartition:
        delta = self._delta_partitions.get(mask)
        if delta is None:
            delta = DeltaPartition(self._sync(mask))
            self._delta_partitions[mask] = delta
        return delta

    def _rebuild_schedule(self) -> None:
        """Recompute which masks each batch must keep current: the
        parent chains behind every held FD and OCD verdict."""
        needed: Set[int] = {0}
        for ctx_mask, node_mask in self._fd_true:
            needed.update(self._chain(ctx_mask))
            needed.update(self._chain(node_mask))
        for ctx_mask, _, _ in self._ocd_true:
            needed.update(self._chain(ctx_mask))
        self._needed_masks = sorted(needed, key=bit_count)

    @staticmethod
    def _chain(mask: int) -> Iterable[int]:
        """``mask`` and its derivation chain (drop lowest bit down)."""
        while mask:
            yield mask
            mask ^= mask & -mask
        yield 0

    # ------------------------------------------------------------------
    # verdict maintenance (the per-batch fast path)
    # ------------------------------------------------------------------
    def _demote_fds(self) -> List[FdKey]:
        """Re-check every held FD off the maintained O(1) measures."""
        flipped = [key for key in self._fd_true
                   if not self._fd_check(*key)]
        for key in flipped:
            self._fd_true.discard(key)
            self._fd_false.add(key)
        return flipped

    def _demote_ocds(self) -> List[OcdKey]:
        """ODMonitor-style per-class checks of the batch against every
        held OCD; violators are demoted permanently."""
        flipped: List[OcdKey] = []
        for key in list(self._ocd_true):
            ctx_mask, a, b = key
            effect = self._batch_effects.get(ctx_mask)
            if effect is None or not effect.touches_classes:
                continue
            if self._feed_state(self._ocd_true[key], effect, a, b):
                del self._ocd_true[key]
                self._ocd_false.add(key)
                flipped.append(key)
        return flipped

    def _witness_fd(self, ctx_mask: int, node_mask: int) -> None:
        """Record the violating row pair behind a False FD (called
        lazily from :meth:`_retract`, just before rows drop)."""
        attr = (node_mask ^ ctx_mask).bit_length() - 1
        split = find_split(self._encoded.column(attr),
                           self._delta(ctx_mask).partition,
                           self._names[attr])
        if split is not None:
            self._fd_witness[(ctx_mask, node_mask)] = (
                split.row_s, split.row_t)

    def _witness_ocd(self, ctx_mask: int, a: int, b: int) -> None:
        """Record the swapped row pair behind a False OCD (called
        lazily from :meth:`_retract`, just before rows drop)."""
        swap = find_swap(self._encoded.column(a),
                         self._encoded.column(b),
                         self._delta(ctx_mask).partition,
                         self._names[a], self._names[b])
        if swap is not None:
            self._ocd_witness[(ctx_mask, a, b)] = (
                swap.row_s, swap.row_t)

    @staticmethod
    def _salvage_false(false_keys: Set, witnesses: Dict,
                       new_index: np.ndarray) -> Set:
        """False verdicts surviving a retraction: exactly those whose
        witness pair survives (remapped to post-delete row indices).
        Witnessless entries drop out and re-validate on next consult."""
        survivors = set()
        for key in false_keys:
            pair = witnesses.get(key)
            if pair is None:
                continue
            row_s = int(new_index[pair[0]])
            row_t = int(new_index[pair[1]])
            if row_s >= 0 and row_t >= 0:
                witnesses[key] = (row_s, row_t)
                survivors.add(key)
            else:
                del witnesses[key]
        return survivors

    def _seed_pending(self) -> None:
        """Materialize every lazily-deferred per-class OCD state over
        the *current* snapshot (which the verdict is exact for).

        Called at the top of the append path, before new rows land.
        Keys dropped by an intervening retraction never reach this
        point — mixed update/delete streams skip seeding entirely and
        re-validate by scan at their single traversal instead.
        """
        for key, state in list(self._ocd_true.items()):
            if state is not None:
                continue
            ctx_mask, a, b = key
            tracker = self._sync(ctx_mask)
            if tracker.is_superkey():
                self._ocd_true[key] = OcdClassState()
            else:
                self._ocd_true[key] = self._seed_state(
                    self._delta(ctx_mask), a, b)

    def _sort_keys(self, attribute: int) -> List[tuple]:
        """Per-row sort keys of one column, built lazily and extended
        per batch — the comparison currency of the OCD states (raw
        ranks cannot serve: they shift when batches insert values)."""
        keys = self._sort_key_cols.get(attribute)
        if keys is None:
            keys = [sort_key(v) for v in self._columns[attribute]]
            self._sort_key_cols[attribute] = keys
        return keys

    def _feed_state(self, state: OcdClassState, effect: BatchEffect,
                    a: int, b: int) -> bool:
        """Insert the batch's class-touching rows; True on violation."""
        keys_a = self._sort_keys(a)
        keys_b = self._sort_keys(b)

        def insert(gid: int, row: int) -> bool:
            a_key = keys_a[row]
            b_key = keys_b[row]
            if state.check(gid, a_key, b_key) is not None:
                return True
            state.accept(gid, a_key, b_key)
            return False

        for row, gid in zip(effect.join_rows.tolist(),
                            effect.join_gids.tolist()):
            if insert(gid, row):
                return True
        for gid, members in effect.new_groups:
            for row in members.tolist():
                if insert(int(gid), int(row)):
                    return True
        return False

    def _seed_state(self, delta: DeltaPartition, a: int,
                    b: int) -> OcdClassState:
        """Per-class interval state over the current grouped rows of a
        context known (just scanned) to be swap-free.

        Built vectorized: each class is sorted once by ``(A, B)`` rank,
        and every A-group contributes one entry to the parallel sorted
        lists directly (rank order and :func:`sort_key` order agree by
        the encoding invariant), skipping the per-row bisection the
        online :meth:`OcdClassState.accept` path needs.
        """
        state = OcdClassState()
        partition = delta.partition
        rows = partition.rows
        if not len(rows):
            return state
        class_ids = partition.class_ids()
        ranks_a = self._encoded.column(a)[rows]
        ranks_b = self._encoded.column(b)[rows]
        order = np.lexsort((ranks_b, ranks_a, class_ids))
        sorted_rows = rows[order].tolist()
        sorted_classes = class_ids[order]
        sorted_a = ranks_a[order]
        n = len(order)
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        new_group[1:] = ((sorted_classes[1:] != sorted_classes[:-1])
                         | (sorted_a[1:] != sorted_a[:-1]))
        starts = np.flatnonzero(new_group)
        ends = np.append(starts[1:], n)
        group_classes = sorted_classes[starts].tolist()
        keys_a = self._sort_keys(a)
        keys_b = self._sort_keys(b)
        class_gids = delta.class_gids
        current = -1
        lists: Tuple[list, list, list] = ([], [], [])
        for index, start, end in zip(group_classes, starts.tolist(),
                                     ends.tolist()):
            if index != current:
                lists = ([], [], [])
                state.classes[int(class_gids[index])] = lists
                current = index
            lists[0].append(keys_a[sorted_rows[start]])
            lists[1].append(keys_b[sorted_rows[start]])
            lists[2].append(keys_b[sorted_rows[end - 1]])
        return state

    # ------------------------------------------------------------------
    # validation against the caches
    # ------------------------------------------------------------------
    def _fd_check(self, ctx_mask: int, node_mask: int) -> bool:
        """The raw FD test off maintained measures: superkey context
        (Lemma 12) or error equality.  Both trackers must be current."""
        context = self._tracker(ctx_mask)
        if context.is_superkey():
            return True
        return context.error == self._tracker(node_mask).error

    def _fd_valid(self, ctx_mask: int, node_mask: int) -> bool:
        """``X \\ A: [] ↦ A`` with verdict caching.

        False verdicts are permanent (a split persists under appends);
        True verdicts were re-checked against the current batch by
        :meth:`_demote_fds`.  Fresh candidates sync their tracker
        chains — this is the only place stale groupings catch up.
        """
        key = (ctx_mask, node_mask)
        if key in self._fd_false:
            return False
        if key in self._fd_true:
            return True
        self._sync(ctx_mask)
        self._sync(node_mask)
        valid = self._fd_check(ctx_mask, node_mask)
        if valid:
            self._fd_true.add(key)
        else:
            self._fd_false.add(key)
        return valid

    def _ocd_valid(self, ctx_mask: int, a: int, b: int) -> bool:
        """``X \\ {A,B}: A ~ B`` with verdict caching.

        False verdicts are permanent; True verdicts were maintained
        against every batch by :meth:`_demote_ocds`, so they are still
        exact.  Only candidates never seen before pay a full scan — and
        immediately start carrying per-class state for future batches.
        """
        key = (ctx_mask, a, b)
        if key in self._ocd_false:
            return False
        if key in self._ocd_true:
            self._live_ocds.add(key)
            return True
        tracker = self._sync(ctx_mask)
        if key in self._ocd_reseed:
            # known True for this snapshot (a retraction cannot break
            # an OCD) — no scan; state seeds lazily (see below)
            self._ocd_reseed.discard(key)
            self._ocd_true[key] = None
            self._live_ocds.add(key)
            return True
        if tracker.is_superkey():
            # no stripped classes to scan (Lemma 13); state starts
            # empty and fills as batches form classes
            self._ocd_true[key] = OcdClassState()
            self._live_ocds.add(key)
            return True
        delta = self._delta(ctx_mask)
        valid = self._scan_compatible(a, b, delta.partition)
        if valid:
            # per-class state is only consulted by the *append* fast
            # path, so it seeds lazily right before the next insert
            # batch lands (:meth:`_seed_pending`) — a delete-bearing
            # batch that drops the verdict first never pays for it
            self._ocd_true[key] = None
            self._live_ocds.add(key)
        else:
            self._ocd_false.add(key)
        return valid

    # ------------------------------------------------------------------
    # the level-wise sweep (the shared planner against the caches)
    # ------------------------------------------------------------------
    def _traverse(self) -> DiscoveryResult:
        config = self._config
        emitted_fds: Set[FdKey] = set()
        self._live_ocds = set()
        planner = LatticePlanner(
            self._names, config, _CacheBackend(self, emitted_fds),
            DeadlineBudget.unlimited(),
            algorithm=("FASTOD-Incremental" if config.minimality_pruning
                       else "FASTOD-Incremental-NoPruning"),
            n_rows=self._encoded.n_rows)
        result = planner.run()

        # verdicts the sweep no longer consults stop being maintained;
        # if invalidations ever re-open that part of the lattice, they
        # are simply re-validated from the then-current snapshot
        self._fd_true = emitted_fds
        self._ocd_true = {
            key: state for key, state in self._ocd_true.items()
            if key in self._live_ocds
        }
        # reseed entries the sweep never consulted fall out of the
        # lattice the planner walks; dropping them is safe (they would
        # be re-validated from scratch if pruning ever re-opens them)
        # and required — a later *insert* batch could silently break a
        # verdict nobody is maintaining state for
        self._ocd_reseed.clear()
        self._rebuild_schedule()
        return result

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _carry_result(self, previous: DiscoveryResult) -> DiscoveryResult:
        """No verdict changed, so no traversal ran: the previous OD set
        is still exact for the grown relation."""
        result = DiscoveryResult(
            algorithm=previous.algorithm,
            attribute_names=previous.attribute_names,
            n_rows=self._encoded.n_rows,
            fds=list(previous.fds),
            ocds=list(previous.ocds),
            level_stats=previous.level_stats,
            minimal=previous.minimal,
            config=previous.config,
        )
        # the carried result's profile is the cumulative executor
        # truth (same source :meth:`executor_stats` reports), so the
        # maintained result always serializes with timings attached
        result.executor_stats = \
            self._executor.telemetry.snapshot()
        result.timings = build_timings(result.executor_stats,
                                       result.level_stats)
        return result

    def _check_against_oracle(self, result: DiscoveryResult) -> None:
        """Assert byte-identical FD/OCD sets vs a from-scratch run."""
        oracle = FastOD(self._relation, self._config).run()
        mine = (sorted(str(od) for od in result.fds),
                sorted(str(od) for od in result.ocds))
        theirs = (sorted(str(od) for od in oracle.fds),
                  sorted(str(od) for od in oracle.ocds))
        if mine != theirs:
            raise AssertionError(
                "incremental result diverged from the from-scratch "
                "oracle:\n" + (diff_results(result, oracle) or ""))


class _CacheBackend(TraversalBackend):
    """Answers the shared planner's typed tasks from the incremental
    engine's verdict caches.

    Nodes carry no partitions (``partition=None`` everywhere): truth
    comes from :meth:`IncrementalFastOD._fd_valid` /
    :meth:`IncrementalFastOD._ocd_valid`, which consult the permanent
    False caches, the maintained True state, and — only for
    never-seen candidates — the delta-maintained partitions.  The
    planner still owns every candidate-set mutation and the emission
    order, so the per-batch re-traversal is byte-identical to what the
    old inlined sweep produced.
    """

    def __init__(self, engine: IncrementalFastOD,
                 emitted_fds: Set[FdKey]):
        self._engine = engine
        self._emitted = emitted_fds

    def root_node(self) -> LatticeNode:
        return LatticeNode(0, None, cc=self._engine._full_mask, cs=set())

    def first_level(self) -> Dict[int, LatticeNode]:
        return {1 << a: LatticeNode(1 << a, None)
                for a in range(self._engine._arity)}

    def fd_verdict(self, task: FdCheckTask, node: LatticeNode,
                   previous: Dict[int, LatticeNode]) -> bool:
        return self._engine._fd_valid(task.context_mask, task.node_mask)

    def fd_emitted(self, task: FdCheckTask) -> None:
        self._emitted.add((task.context_mask, task.node_mask))

    def fd_phase_complete(self, level: int, n_candidates: int,
                          seconds: float = 0.0) -> None:
        self._engine._executor.telemetry.record(
            "fd-check", n_candidates, False, seconds)

    def ocd_verdicts(self, level: int, tasks: List[OcdScanTask],
                     before_previous: Dict[int, LatticeNode]):
        self._engine._executor.telemetry.record(
            "ocd-scan", len(tasks), False)
        return {task: self._engine._ocd_valid(task.context_mask,
                                              task.a, task.b)
                for task in tasks}, False

    def build_level(self, masks, current) -> Dict[int, LatticeNode]:
        return {mask: LatticeNode(mask, None) for mask in masks}

    def finish(self, result: DiscoveryResult) -> None:
        result.executor_stats = \
            self._engine._executor.telemetry.snapshot()
