"""Delta maintenance of groupings and stripped partitions.

The discovery lattice consumes, per attribute set ``X``, the stripped
partition Π*_X.  Rebuilding every partition per appended batch repeats
an O(n log n) sort for each mask; this module maintains them instead:

* :class:`GroupTracker` — the *full* grouping of rows by ``X``
  (singletons included), with **stable group ids**: a group keeps its
  id as it grows, new groups get fresh ids.  Stability is what lets
  per-group validation state (constants, interval sets) survive a
  batch.  Trackers compose structurally: the tracker for ``X`` pairs
  the tracker of ``X`` minus its lowest attribute with that attribute's
  stable value ids, so one batch updates the whole tracked family in
  vectorized passes proportional to the batch.
* :class:`DeltaPartition` — a materialized Π*_X kept current by
  splicing each batch into the CSR rows/offsets layout
  (:func:`repro.partitions.partition.merge_batch`) instead of
  re-sorting, tracking which classes grew.

Stable ids bottom out in the encoding layer: a value's ``gid`` is its
first-appearance id (:class:`repro.relation.encoding.ColumnKeys`),
which — unlike its dense rank — never moves when later batches insert
new values between existing ones.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.partitions.partition import (
    StrippedPartition,
    _strip_sorted_runs,
    merge_batch,
)

#: Attribute-value gids occupy the low bits of a composite pair key;
#: 32 bits bounds the per-column distinct count at 2^32 — far above
#: any relation this engine will see in memory.
_PAIR_SHIFT = 32


class BatchEffect:
    """What one appended batch did to one tracked grouping.

    ``join_rows``/``join_gids`` — batch rows landing in groups that
    were already classes (size >= 2).  ``new_groups`` — ``(gid, rows)``
    per newly *formed* class: either an old singleton promoted by
    matching batch rows (its original row leads) or a fresh group with
    two or more batch rows.  ``batch_gids`` — every batch row's group
    id, in batch order.
    """

    __slots__ = ("mask", "batch_rows", "batch_gids", "join_rows",
                 "join_gids", "new_groups")

    def __init__(self, mask: int, batch_rows: np.ndarray,
                 batch_gids: np.ndarray, join_rows: np.ndarray,
                 join_gids: np.ndarray,
                 new_groups: List[Tuple[int, np.ndarray]]):
        self.mask = mask
        self.batch_rows = batch_rows
        self.batch_gids = batch_gids
        self.join_rows = join_rows
        self.join_gids = join_gids
        self.new_groups = new_groups

    @property
    def touches_classes(self) -> bool:
        """True when some class gained rows or came into existence."""
        return bool(len(self.join_rows)) or bool(self.new_groups)


class GroupTracker:
    """Stable-id grouping of all rows by one attribute set.

    ``group_of[t]`` is row ``t``'s group id; ``sizes``/``first_row``
    are per-gid.  ``n_classes``/``n_grouped_rows`` mirror the stripped
    partition's measures (``|Π*|`` and ``||Π*||``), maintained O(batch)
    per append so the FD error test ``e(X) = ||Π*|| - |Π*|`` and the
    superkey test stay O(1) without materializing the partition.
    """

    __slots__ = ("mask", "group_of", "sizes", "first_row", "n_groups",
                 "n_classes", "n_grouped_rows", "_keys_sorted",
                 "_gid_for_key")

    def __init__(self, mask: int, group_of: np.ndarray, n_groups: int,
                 keys_sorted: Optional[np.ndarray] = None,
                 gid_for_key: Optional[np.ndarray] = None):
        self.mask = mask
        self.group_of = group_of
        self.n_groups = n_groups
        self.sizes = np.bincount(group_of, minlength=n_groups) \
            if len(group_of) else np.zeros(n_groups, dtype=np.int64)
        # last write wins on duplicate indices, so assigning in reverse
        # row order leaves each gid's first occurrence
        self.first_row = np.full(n_groups, -1, dtype=np.int64)
        if len(group_of):
            indices = np.arange(len(group_of), dtype=np.int64)
            self.first_row[group_of[::-1]] = indices[::-1]
        grouped = self.sizes >= 2
        self.n_classes = int(grouped.sum())
        self.n_grouped_rows = int(self.sizes[grouped].sum())
        self._keys_sorted = keys_sorted
        self._gid_for_key = gid_for_key

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_gids(cls, mask: int, gids: np.ndarray) -> "GroupTracker":
        """Tracker over a dense, stable gid column.

        Covers the two base cases: a single attribute (the encoder's
        value gids) and the empty set (all-zero gids).
        """
        n_groups = int(gids.max()) + 1 if len(gids) else 0
        return cls(mask, gids.astype(np.int64, copy=True), n_groups)

    @classmethod
    def combine(cls, mask: int, parent: "GroupTracker",
                attr_gids: np.ndarray) -> "GroupTracker":
        """Tracker for ``X`` from ``X``-minus-lowest and that
        attribute's value gids (the structural recursion)."""
        keys = (parent.group_of << _PAIR_SHIFT) | attr_gids
        keys_sorted, group_of = np.unique(keys, return_inverse=True)
        return cls(mask, group_of.astype(np.int64, copy=False),
                   len(keys_sorted), keys_sorted,
                   np.arange(len(keys_sorted), dtype=np.int64))

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self.group_of)

    @property
    def error(self) -> int:
        """TANE's e(X) numerator, ``||Π*|| - |Π*||``."""
        return self.n_grouped_rows - self.n_classes

    def is_superkey(self) -> bool:
        return self.n_classes == 0

    # ------------------------------------------------------------------
    # delta maintenance
    # ------------------------------------------------------------------
    def _batch_gids(self, batch_attr_gids: np.ndarray,
                    parent: Optional["GroupTracker"]) -> np.ndarray:
        """Resolve the batch rows' group ids, minting fresh ids for
        unseen (parent-group, value) combinations."""
        if parent is None:
            # base case: the column's stable value gids are the group
            # ids (fresh values already carry fresh sequential gids)
            return batch_attr_gids.astype(np.int64, copy=False)
        # the parent must already cover the batch span; its gids for
        # the same rows form the high half of the pair keys
        parent_gids = parent.group_of[len(self.group_of):]
        if len(parent_gids) != len(batch_attr_gids):
            raise ValueError(
                "parent tracker does not cover the batch span")
        keys = (parent_gids << _PAIR_SHIFT) | batch_attr_gids
        positions = np.searchsorted(self._keys_sorted, keys)
        positions = np.minimum(positions, len(self._keys_sorted) - 1) \
            if len(self._keys_sorted) else np.zeros(len(keys), dtype=np.int64)
        known = np.zeros(len(keys), dtype=bool)
        if len(self._keys_sorted):
            known = self._keys_sorted[positions] == keys
        gids = np.empty(len(keys), dtype=np.int64)
        if known.any():
            gids[known] = self._gid_for_key[positions[known]]
        if not known.all():
            fresh_keys, inverse = np.unique(keys[~known],
                                            return_inverse=True)
            fresh_gids = np.arange(
                self.n_groups, self.n_groups + len(fresh_keys),
                dtype=np.int64)
            gids[~known] = fresh_gids[inverse]
            insert_at = np.searchsorted(self._keys_sorted, fresh_keys)
            self._keys_sorted = np.insert(self._keys_sorted, insert_at,
                                          fresh_keys)
            self._gid_for_key = np.insert(self._gid_for_key, insert_at,
                                          fresh_gids)
        return gids

    def apply_batch(self, batch_attr_gids: np.ndarray,
                    parent: Optional["GroupTracker"] = None) -> BatchEffect:
        """Fold one appended span of rows in and describe what changed.

        ``batch_attr_gids`` are the span's stable value gids on this
        tracker's distinguishing attribute (for base trackers — a
        single attribute or the empty set — they *are* the group ids).
        ``parent`` is the already-updated tracker of the set minus that
        attribute.  The span may cover several logical batches at once:
        trackers that nothing currently validates are left stale and
        caught up in one combined span when next consulted.
        """
        n_old = len(self.group_of)
        old_n_groups = self.n_groups
        old_sizes = self.sizes
        gids = self._batch_gids(batch_attr_gids, parent)
        batch_rows = np.arange(n_old, n_old + len(gids), dtype=np.int64)

        self.group_of = np.concatenate((self.group_of, gids))
        n_groups = max(old_n_groups,
                       int(gids.max()) + 1 if len(gids) else 0)

        # segment the batch by gid once, then classify whole segments:
        # the only Python-level loop left runs over newly *formed*
        # classes, not over batch rows
        order = np.argsort(gids, kind="stable")
        sorted_gids = gids[order]
        sorted_rows = batch_rows[order]
        starts = np.flatnonzero(
            np.diff(sorted_gids, prepend=-1)) if len(gids) else \
            np.empty(0, dtype=np.int64)
        bounds = np.append(starts, len(gids))
        seg_gids = sorted_gids[starts]
        seg_counts = bounds[1:] - starts
        known_seg = seg_gids < old_n_groups
        seg_old_sizes = np.zeros(len(seg_gids), dtype=np.int64)
        if known_seg.any():
            seg_old_sizes[known_seg] = old_sizes[seg_gids[known_seg]]

        joining = seg_old_sizes >= 2
        join_mask = np.repeat(joining, seg_counts)
        join_rows = sorted_rows[join_mask]
        join_gids = sorted_gids[join_mask]

        promoted = seg_old_sizes == 1
        forming = (seg_old_sizes == 0) & (seg_counts >= 2)
        new_groups: List[Tuple[int, np.ndarray]] = []
        for i in np.flatnonzero(promoted | forming):
            gid = int(seg_gids[i])
            members = sorted_rows[starts[i]:bounds[i + 1]]
            if promoted[i]:
                members = np.concatenate(
                    ([self.first_row[gid]], members))
            new_groups.append((gid, members))

        grouped_delta = int(len(join_rows)
                            + seg_counts[promoted].sum() + promoted.sum()
                            + seg_counts[forming].sum())
        classes_delta = int(promoted.sum() + forming.sum())

        # per-gid bookkeeping: grow the arrays, then count the batch in
        if n_groups > old_n_groups:
            growth = n_groups - old_n_groups
            self.sizes = np.concatenate(
                (self.sizes, np.zeros(growth, dtype=np.int64)))
            fresh_first = np.full(growth, -1, dtype=np.int64)
            self.first_row = np.concatenate((self.first_row, fresh_first))
            fresh_mask = sorted_gids >= old_n_groups
            if fresh_mask.any():
                fresh_sorted = sorted_gids[fresh_mask]
                fresh_members = batch_rows[order[fresh_mask]]
                # reverse assignment: first occurrence wins
                self.first_row[fresh_sorted[::-1]] = fresh_members[::-1]
        if len(gids):
            np.add.at(self.sizes, gids, 1)
        self.n_groups = n_groups
        self.n_grouped_rows += grouped_delta
        self.n_classes += classes_delta

        return BatchEffect(self.mask, batch_rows, gids, join_rows,
                           join_gids, new_groups)


class DeltaPartition:
    """A materialized Π*_X kept fresh through CSR batch merges.

    Built lazily from a :class:`GroupTracker` (one counting sort), then
    maintained by translating each :class:`BatchEffect` into a
    :func:`merge_batch` splice.  ``class_gids[c]`` is the stable group
    id of CSR class ``c`` (class ids are append-only, mirroring the
    kernel's contract), and ``last_grew`` flags the classes the latest
    batch touched — the classes incremental validation re-examines.
    """

    __slots__ = ("tracker", "partition", "class_gids", "last_grew")

    def __init__(self, tracker: GroupTracker):
        self.tracker = tracker
        if tracker.n_classes == 0:
            self.partition = StrippedPartition([], tracker.n_rows)
            self.class_gids = np.empty(0, dtype=np.int64)
        else:
            order = np.argsort(tracker.group_of,
                               kind="stable").astype(np.int64, copy=False)
            rows, offsets = _strip_sorted_runs(
                order, tracker.group_of[order])
            self.partition = StrippedPartition.from_flat(
                rows, offsets, tracker.n_rows)
            self.class_gids = tracker.group_of[rows[offsets[:-1]]]
        self.last_grew = np.zeros(len(self.class_gids), dtype=bool)

    def class_of_gid(self) -> np.ndarray:
        """gid -> CSR class id (-1 for singleton/absent gids)."""
        table = np.full(self.tracker.n_groups, -1, dtype=np.int64)
        table[self.class_gids] = np.arange(len(self.class_gids),
                                           dtype=np.int64)
        return table

    def apply(self, effect: BatchEffect) -> None:
        """Splice one batch's effect into the CSR layout."""
        n_rows = self.tracker.n_rows
        if not effect.touches_classes:
            self.partition = StrippedPartition.from_flat(
                self.partition.rows, self.partition.offsets, n_rows)
            self.last_grew = np.zeros(len(self.class_gids), dtype=bool)
            return
        join_classes = self.class_of_gid()[effect.join_gids]
        self.partition, self.last_grew = merge_batch(
            self.partition, n_rows, effect.join_rows, join_classes,
            [rows for _, rows in effect.new_groups])
        if effect.new_groups:
            self.class_gids = np.concatenate(
                (self.class_gids,
                 np.fromiter((gid for gid, _ in effect.new_groups),
                             dtype=np.int64,
                             count=len(effect.new_groups))))

    def grown_classes(self) -> Sequence[Tuple[int, np.ndarray]]:
        """(gid, rows) of every class the last batch touched."""
        offsets = self.partition.offsets
        rows = self.partition.rows
        return [
            (int(self.class_gids[c]), rows[offsets[c]:offsets[c + 1]])
            for c in np.flatnonzero(self.last_grew)
        ]
