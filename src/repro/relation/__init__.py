"""Relational substrate: schemas, tables, CSV I/O, rank encoding."""

from repro.relation.csvio import read_csv, read_csv_text, write_csv
from repro.relation.encoding import EncodedRelation, rank_encode_column
from repro.relation.fingerprint import fingerprint
from repro.relation.schema import (
    Schema,
    bit_count,
    iter_bits,
    mask_of_indices,
)
from repro.relation.table import Relation

__all__ = [
    "EncodedRelation",
    "Relation",
    "Schema",
    "bit_count",
    "fingerprint",
    "iter_bits",
    "mask_of_indices",
    "rank_encode_column",
    "read_csv",
    "read_csv_text",
    "write_csv",
]
