"""Content fingerprints for relation instances.

Discovery output is a pure function of the *rank structure* of a
relation: FASTOD, the validators, and the violation detector consume
only the dense rank columns of
:class:`~repro.relation.encoding.EncodedRelation` (Section 4.6 of the
paper) plus the attribute names.  :func:`fingerprint` hashes exactly
that — the schema and the encoded rank columns — into a hex digest
that is

* **stable across process restarts** (SHA-256 over raw little-endian
  ``int64`` bytes; no ``PYTHONHASHSEED`` or dict-order dependence), and
* **canonical for discovery**: two relations with equal fingerprints
  produce byte-identical FD/OCD sets, even when their raw cell values
  differ (``[1, 2]`` and ``[10, 20]`` rank-encode identically, and the
  algorithms cannot tell them apart).

The service layer's dataset catalog keys resident relations by this
fingerprint, and the result store keys cached
:class:`~repro.core.results.DiscoveryResult` payloads by
``(fingerprint, canonical config)`` — so the digest doubles as the
cache key contract of ``repro-od serve`` and is surfaced by
``repro-od profile --json``.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

from repro.relation.encoding import EncodedRelation
from repro.relation.table import Relation

#: Bumped whenever the hashed byte layout changes, so digests from
#: different library versions can never collide silently.
_FINGERPRINT_VERSION = b"repro-relation-fingerprint-v1"


def fingerprint(relation: Union[Relation, EncodedRelation]) -> str:
    """A stable content digest of one relation's discovery-relevant state.

    Accepts a raw :class:`Relation` (encoded on demand — the encoding
    is cached on the instance) or an already-encoded relation.  Covers
    the schema (attribute names, in order), the row count, and every
    rank column's exact bytes; anything that could change a discovery
    verdict changes the digest, and nothing else does.

    >>> from repro.relation.table import Relation
    >>> a = Relation.from_rows(["x", "y"], [(1, 10), (2, 20)])
    >>> b = Relation.from_rows(["x", "y"], [(5, 100), (7, 300)])
    >>> fingerprint(a) == fingerprint(b)   # identical rank structure
    True
    >>> fingerprint(a) == fingerprint(a.append_rows([(3, 30)]))
    False
    """
    if isinstance(relation, Relation):
        relation = relation.encode()
    digest = hashlib.sha256()
    digest.update(_FINGERPRINT_VERSION)
    digest.update(str(relation.n_rows).encode("utf-8"))
    for name in relation.names:
        digest.update(b"\x00")
        digest.update(name.encode("utf-8"))
    for column in relation.ranks:
        digest.update(b"\x01")
        digest.update(np.ascontiguousarray(column, dtype="<i8").tobytes())
    return digest.hexdigest()


__all__ = ["fingerprint"]
