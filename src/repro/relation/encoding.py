"""Rank encoding of relation columns into dense integers.

Section 4.6 of the paper: *"The values of the columns are replaced with
integers: 1, 2, ..., n, in a way that the equivalence classes do not
change and the ordering is preserved."*  After encoding, equality and
order comparisons over attribute values become cheap integer
comparisons, and the rank of a tuple's value doubles as the identifier
of its equivalence class in the single-attribute partition.

Missing values (``None``) sort before everything else (SQL ``NULLS
FIRST`` under ascending order).  Columns may mix types; a deterministic
total order is imposed by grouping values by *kind* (missing, boolean,
number, string, other) and ordering within each kind.
"""

from __future__ import annotations

import numbers
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Kind tags used to build a total order across mixed-type columns.
_KIND_MISSING = 0
_KIND_BOOL = 1
_KIND_NUMBER = 2
_KIND_STRING = 3
_KIND_OTHER = 4


def sort_key(value: Any) -> Tuple[int, Any]:
    """A total-order sort key for arbitrary cell values.

    ``None`` first, then booleans, then numbers (including numpy
    scalars — ``numbers.Number`` covers them), then strings, then other
    comparable values grouped by type, with ``repr`` as the last
    resort.  Within numbers, ints and floats compare numerically (so
    ``1 == 1.0`` share a rank).
    """
    if value is None:
        return (_KIND_MISSING, 0)
    if isinstance(value, (bool, np.bool_)):
        return (_KIND_BOOL, bool(value))
    if isinstance(value, numbers.Number):
        # Normalise numpy scalars so 1, np.int64(1) and 1.0 share a key.
        as_float = float(value)
        as_int = int(as_float)
        return (_KIND_NUMBER, as_int if as_int == as_float else as_float)
    if isinstance(value, str):
        return (_KIND_STRING, value)
    # Same-type values (dates, tuples, ...) compare among themselves;
    # the type name separates incompatible groups deterministically.
    return (_KIND_OTHER, type(value).__name__, value)


def _sorted_distinct(keyed: Sequence[Tuple]) -> List[Tuple]:
    try:
        return sorted(set(keyed))
    except TypeError:
        # Values of some exotic type that is not self-comparable:
        # fall back to a deterministic repr ordering for that group.
        return sorted(set(keyed), key=repr)


def rank_encode_column(values: Sequence[Any]) -> np.ndarray:
    """Dense-rank a column: equal values share a rank, order preserved.

    Returns an ``int64`` array of ranks in ``[0, #distinct)``.

    >>> list(rank_encode_column([30, 10, 10, 20]))
    [2, 0, 0, 1]
    """
    keyed = [sort_key(v) for v in values]
    order = _sorted_distinct(keyed)
    rank_of = {key: rank for rank, key in enumerate(order)}
    return np.fromiter(
        (rank_of[key] for key in keyed), dtype=np.int64, count=len(keyed))


class ColumnKeys:
    """The per-column dictionary behind an incremental rank encoding.

    Dense ranks shift when a new value lands between existing ones, so
    an append-friendly encoding separates two identities:

    * the **rank** of a value — its position in the sorted distinct
      keys, which moves as the domain grows, and
    * the **gid** of a value — a stable id assigned at first
      appearance, which never moves.

    ``sorted_keys[r]`` is the sort key holding rank ``r`` and
    ``gid_sorted[r]`` its stable gid; ``_gid_of`` maps keys to gids.
    :meth:`extend` folds a batch of raw values in, re-encoding *only*
    the batch and describing how old ranks shift via a monotone remap
    (the contract the delta partition kernels rely on: rank order —
    hence any lexicographic order built from ranks — is preserved).
    """

    __slots__ = ("sorted_keys", "gid_sorted", "_gid_of")

    def __init__(self, sorted_keys: List[Tuple], gid_sorted: np.ndarray,
                 gid_of: Dict[Tuple, int]):
        self.sorted_keys = sorted_keys
        self.gid_sorted = gid_sorted
        self._gid_of = gid_of

    @classmethod
    def from_values(cls, values: Sequence[Any]
                    ) -> Tuple[np.ndarray, "ColumnKeys"]:
        """Encode a column from scratch, returning (ranks, keys)."""
        keyed = [sort_key(v) for v in values]
        order = _sorted_distinct(keyed)
        gid_of = {key: gid for gid, key in enumerate(order)}
        ranks = np.fromiter((gid_of[key] for key in keyed),
                            dtype=np.int64, count=len(keyed))
        return ranks, cls(order, np.arange(len(order), dtype=np.int64),
                          gid_of)

    @property
    def n_distinct(self) -> int:
        return len(self.sorted_keys)

    def rank_of_gid(self) -> np.ndarray:
        """Inverse of ``gid_sorted``: stable gid -> current rank.

        Sized by the largest gid present, not the distinct count —
        sibling extensions branched from one snapshot share the gid
        namespace, so a branch's gids need not be contiguous.
        """
        if not len(self.gid_sorted):
            return np.empty(0, dtype=np.int64)
        inverse = np.full(int(self.gid_sorted.max()) + 1, -1,
                          dtype=np.int64)
        inverse[self.gid_sorted] = np.arange(len(self.gid_sorted),
                                             dtype=np.int64)
        return inverse

    def extend(self, values: Sequence[Any]
               ) -> Tuple["ColumnKeys", "ColumnExtension"]:
        """Fold a batch of raw values into the dictionary.

        Only the batch is keyed; unseen keys are merge-inserted into
        the sorted dictionary and the resulting rank shifts of the old
        domain are returned as a monotone ``remap`` array.  The
        pre-extension ``ColumnKeys`` stays valid for the old snapshot:
        the gid table is shared (a key means the same gid in every
        branch, and fresh gids are minted from the shared counter), so
        several extensions may branch from one snapshot — a key is
        *fresh for this branch* whenever it is not in this branch's
        sorted dictionary yet, even if a sibling already named it.
        """
        keyed = [sort_key(v) for v in values]
        gid_of = self._gid_of
        old_distinct = len(self.sorted_keys)
        # dict hits are members of this branch only while nobody else
        # has minted into the shared table; once polluted, membership
        # must be checked against this branch's own keys
        members = set(self.sorted_keys) \
            if len(gid_of) > old_distinct else None
        fresh: List[Tuple] = []
        fresh_seen: set = set()
        batch_gids = np.empty(len(keyed), dtype=np.int64)
        for i, key in enumerate(keyed):
            gid = gid_of.get(key)
            if gid is None:
                gid = len(gid_of)
                gid_of[key] = gid
                fresh_seen.add(key)
                fresh.append(key)
            elif key not in fresh_seen and (
                    key not in members if members is not None
                    else gid >= old_distinct):
                # named by a sibling branch (or possibly, before this
                # call, by an earlier batch of one) — new to us
                fresh_seen.add(key)
                fresh.append(key)
            batch_gids[i] = gid
        if not fresh:
            remap = np.arange(old_distinct, dtype=np.int64)
            extended = ColumnKeys(self.sorted_keys, self.gid_sorted, gid_of)
        else:
            fresh = _sorted_distinct(fresh)
            try:
                positions = np.fromiter(
                    (bisect_left(self.sorted_keys, key) for key in fresh),
                    dtype=np.int64, count=len(fresh))
            except TypeError:
                # keys of some exotic non-comparable type: rebuild the
                # merged order the same way from_values would
                return self._extend_incomparable(fresh, batch_gids,
                                                 gid_of)
            # old rank r shifts right by the number of fresh keys
            # inserted at positions <= r
            remap = np.arange(old_distinct, dtype=np.int64)
            remap += np.searchsorted(positions, remap, side="right")
            # gids were handed out in first-appearance order, which need
            # not match key order — look each sorted fresh key back up
            fresh_gids = np.fromiter((gid_of[key] for key in fresh),
                                     dtype=np.int64, count=len(fresh))
            gid_sorted = np.insert(self.gid_sorted, positions, fresh_gids)
            # one linear merge of the two sorted key lists (a per-key
            # list.insert would cost O(fresh * distinct))
            merged: List[Tuple] = []
            previous = 0
            for position, key in zip(positions.tolist(), fresh):
                merged.extend(self.sorted_keys[previous:position])
                merged.append(key)
                previous = position
            merged.extend(self.sorted_keys[previous:])
            extended = ColumnKeys(merged, gid_sorted, gid_of)
        batch_ranks = extended.rank_of_gid()[batch_gids]
        return extended, ColumnExtension(remap, batch_ranks, batch_gids)

    def _extend_incomparable(self, fresh: List[Tuple],
                             batch_gids: np.ndarray, gid_of: Dict
                             ) -> Tuple["ColumnKeys", "ColumnExtension"]:
        """Slow-path extension for keys the fast merge cannot order:
        re-sort the merged key set exactly as :meth:`from_values`
        would (falling back to ``repr`` order), so incremental and
        from-scratch encodings agree on any hashable value type."""
        merged = _sorted_distinct(list(self.sorted_keys) + fresh)
        position_of = {key: rank for rank, key in enumerate(merged)}
        remap = np.fromiter(
            (position_of[key] for key in self.sorted_keys),
            dtype=np.int64, count=len(self.sorted_keys))
        gid_sorted = np.empty(len(merged), dtype=np.int64)
        for key, rank in position_of.items():
            gid_sorted[rank] = gid_of[key]
        extended = ColumnKeys(merged, gid_sorted, gid_of)
        batch_ranks = extended.rank_of_gid()[batch_gids]
        return extended, ColumnExtension(remap, batch_ranks, batch_gids)


class ColumnExtension:
    """What one batch did to one column's encoding.

    ``remap`` maps old rank -> new rank (monotone increasing);
    ``batch_ranks`` are the appended rows' ranks in the new domain;
    ``batch_gids`` their stable first-appearance ids (used by the
    incremental engine as order-free group identities).
    """

    __slots__ = ("remap", "batch_ranks", "batch_gids")

    def __init__(self, remap: np.ndarray, batch_ranks: np.ndarray,
                 batch_gids: np.ndarray):
        self.remap = remap
        self.batch_ranks = batch_ranks
        self.batch_gids = batch_gids


class EncodedRelation:
    """A relation instance reduced to dense integer rank columns.

    This is the representation all discovery algorithms consume: a list
    of numpy ``int64`` arrays, one per attribute, where ``ranks[a][t]``
    is the dense rank of tuple ``t``'s value on attribute ``a``.

    ``keys`` optionally retains the per-column :class:`ColumnKeys`
    dictionaries, which makes the relation *appendable*: batches are
    folded in by :meth:`append_values`, re-encoding only the new values
    (paper encodings are whole-snapshot; the incremental engine needs
    the delta form).
    """

    __slots__ = ("names", "ranks", "n_rows", "keys", "_arena")

    def __init__(self, names: Sequence[str], ranks: List[np.ndarray],
                 keys: Optional[List[ColumnKeys]] = None):
        if len(names) != len(ranks):
            raise ValueError("one rank column required per attribute")
        if keys is not None and len(keys) != len(ranks):
            raise ValueError("one key dictionary required per attribute")
        self.names: Tuple[str, ...] = tuple(names)
        self.ranks: List[np.ndarray] = ranks
        self.n_rows: int = int(len(ranks[0])) if ranks else 0
        self.keys: Optional[List[ColumnKeys]] = keys
        #: cached shared-memory ColumnArena (see :meth:`shared_arena`)
        self._arena = None
        for column in ranks:
            if len(column) != self.n_rows:
                raise ValueError("rank columns have inconsistent lengths")

    @classmethod
    def from_columns(cls, names: Sequence[str],
                     columns: Sequence[Sequence[Any]]) -> "EncodedRelation":
        """Rank-encode raw columns, retaining the appendable key state."""
        ranks: List[np.ndarray] = []
        keys: List[ColumnKeys] = []
        for column in columns:
            column_ranks, column_keys = ColumnKeys.from_values(column)
            ranks.append(column_ranks)
            keys.append(column_keys)
        return cls(names, ranks, keys)

    @property
    def arity(self) -> int:
        return len(self.names)

    def column(self, index: int) -> np.ndarray:
        """The rank column of the attribute at ``index``."""
        return self.ranks[index]

    def rank_arrays(self) -> Dict[int, np.ndarray]:
        """All rank columns keyed by attribute index — the publication
        unit of the shared-memory worker pool (each column is copied
        into the shared block once per pool, never per task)."""
        return {a: self.ranks[a] for a in range(self.arity)}

    @property
    def rank_nbytes(self) -> int:
        """Total bytes held by the rank columns (capacity planning for
        shared-memory publication and peak-memory accounting)."""
        return sum(column.nbytes for column in self.ranks)

    def has_live_arena(self) -> bool:
        """True when a shared-memory arena for this relation's columns
        is already published (some pool currently holds it)."""
        return self._arena is not None and not self._arena.closed

    def shared_arena(self):
        """An **acquired** shared-memory arena over the rank columns.

        The first caller pays one copy into a fresh segment; as long as
        at least one holder keeps it acquired, further callers adopt
        the same segment zero-copy (two executors over one relation
        share one publication).  The arena is handed out with one
        reference already taken — the caller owns it and must
        :meth:`~repro.kernels.ingest.ColumnArena.release`; once every
        holder releases, the segment is unlinked and the next call
        builds a fresh one.
        """
        from repro.kernels.ingest import ColumnArena

        arena = self._arena
        if arena is not None and not arena.closed:
            try:
                return arena.acquire()
            except ValueError:   # closed between the check and acquire
                pass
        arena = ColumnArena.build(self.rank_arrays(), self.n_rows,
                                  backing="shm")
        arena.acquire()
        self._arena = arena
        return arena

    def tuple_ranks(self, row: int, indices: Sequence[int]) -> Tuple[int, ...]:
        """Project one tuple onto ``indices``, returning its ranks."""
        return tuple(int(self.ranks[i][row]) for i in indices)

    def select_rows(self, indices: Sequence[int]) -> "EncodedRelation":
        """Re-encode a row subset (or reordering) without touching raw
        values.

        Dense ranks of a gathered row set are the gathered ranks,
        re-densified — one vectorized ``np.unique`` per column instead
        of re-keying every cell through :func:`sort_key`.  The result
        is byte-identical to encoding the selected rows from scratch
        (``np.unique`` sorts, and any subset of dense ranks keeps its
        relative order), so content fingerprints agree.

        When keys are retained, the selected encoding shares the gid
        table: values whose last occurrence was dropped keep their
        stable gid, so re-inserting one later rides the normal
        sibling-branch path of :meth:`ColumnKeys.extend`.  This is the
        deletion analogue of :meth:`append_values` — the incremental
        engine's retraction path lives on it.
        """
        from repro import kernels

        keep = np.asarray(indices, dtype=np.int64)
        ranks: List[np.ndarray] = []
        keys: Optional[List[ColumnKeys]] = (
            None if self.keys is None else [])
        for a, column_ranks in enumerate(self.ranks):
            survivors, dense = kernels.densify(column_ranks[keep])
            ranks.append(dense)
            if keys is not None:
                old = self.keys[a]
                keys.append(ColumnKeys(
                    [old.sorted_keys[r] for r in survivors.tolist()],
                    old.gid_sorted[survivors],
                    old._gid_of))
        return EncodedRelation(self.names, ranks, keys)

    def append_values(self, batch_columns: Sequence[Sequence[Any]]
                      ) -> Tuple["EncodedRelation", List[ColumnExtension]]:
        """Fold a batch of raw column values into the encoding.

        Returns the grown relation plus one :class:`ColumnExtension`
        per column.  Work is proportional to the batch for the new
        rows' ranks and to the (old) data only through one vectorized
        remap gather per column — no re-sorting of old values.  The
        original relation is left untouched.

        Requires ``keys`` (an encoding built via :meth:`from_columns`
        or :meth:`repro.relation.table.Relation.encode`).
        """
        if self.keys is None:
            raise ValueError(
                "this EncodedRelation was built without key retention "
                "and cannot be appended to")
        if len(batch_columns) != self.arity:
            raise ValueError(
                f"expected {self.arity} batch columns, "
                f"got {len(batch_columns)}")
        ranks: List[np.ndarray] = []
        keys: List[ColumnKeys] = []
        extensions: List[ColumnExtension] = []
        for column_ranks, column_keys, batch in zip(
                self.ranks, self.keys, batch_columns):
            extended_keys, extension = column_keys.extend(batch)
            ranks.append(np.concatenate(
                (extension.remap[column_ranks], extension.batch_ranks)))
            keys.append(extended_keys)
            extensions.append(extension)
        return EncodedRelation(self.names, ranks, keys), extensions
