"""Rank encoding of relation columns into dense integers.

Section 4.6 of the paper: *"The values of the columns are replaced with
integers: 1, 2, ..., n, in a way that the equivalence classes do not
change and the ordering is preserved."*  After encoding, equality and
order comparisons over attribute values become cheap integer
comparisons, and the rank of a tuple's value doubles as the identifier
of its equivalence class in the single-attribute partition.

Missing values (``None``) sort before everything else (SQL ``NULLS
FIRST`` under ascending order).  Columns may mix types; a deterministic
total order is imposed by grouping values by *kind* (missing, boolean,
number, string, other) and ordering within each kind.
"""

from __future__ import annotations

import numbers
from typing import Any, List, Sequence, Tuple

import numpy as np

#: Kind tags used to build a total order across mixed-type columns.
_KIND_MISSING = 0
_KIND_BOOL = 1
_KIND_NUMBER = 2
_KIND_STRING = 3
_KIND_OTHER = 4


def sort_key(value: Any) -> Tuple[int, Any]:
    """A total-order sort key for arbitrary cell values.

    ``None`` first, then booleans, then numbers (including numpy
    scalars — ``numbers.Number`` covers them), then strings, then other
    comparable values grouped by type, with ``repr`` as the last
    resort.  Within numbers, ints and floats compare numerically (so
    ``1 == 1.0`` share a rank).
    """
    if value is None:
        return (_KIND_MISSING, 0)
    if isinstance(value, (bool, np.bool_)):
        return (_KIND_BOOL, bool(value))
    if isinstance(value, numbers.Number):
        # Normalise numpy scalars so 1, np.int64(1) and 1.0 share a key.
        as_float = float(value)
        as_int = int(as_float)
        return (_KIND_NUMBER, as_int if as_int == as_float else as_float)
    if isinstance(value, str):
        return (_KIND_STRING, value)
    # Same-type values (dates, tuples, ...) compare among themselves;
    # the type name separates incompatible groups deterministically.
    return (_KIND_OTHER, type(value).__name__, value)


def rank_encode_column(values: Sequence[Any]) -> np.ndarray:
    """Dense-rank a column: equal values share a rank, order preserved.

    Returns an ``int64`` array of ranks in ``[0, #distinct)``.

    >>> list(rank_encode_column([30, 10, 10, 20]))
    [2, 0, 0, 1]
    """
    keyed = [sort_key(v) for v in values]
    try:
        order = sorted(set(keyed))
    except TypeError:
        # Values of some exotic type that is not self-comparable:
        # fall back to a deterministic repr ordering for that group.
        order = sorted(set(keyed), key=repr)
    rank_of = {key: rank for rank, key in enumerate(order)}
    return np.fromiter(
        (rank_of[key] for key in keyed), dtype=np.int64, count=len(keyed))


class EncodedRelation:
    """A relation instance reduced to dense integer rank columns.

    This is the representation all discovery algorithms consume: a list
    of numpy ``int64`` arrays, one per attribute, where ``ranks[a][t]``
    is the dense rank of tuple ``t``'s value on attribute ``a``.
    """

    __slots__ = ("names", "ranks", "n_rows")

    def __init__(self, names: Sequence[str], ranks: List[np.ndarray]):
        if len(names) != len(ranks):
            raise ValueError("one rank column required per attribute")
        self.names: Tuple[str, ...] = tuple(names)
        self.ranks: List[np.ndarray] = ranks
        self.n_rows: int = int(len(ranks[0])) if ranks else 0
        for column in ranks:
            if len(column) != self.n_rows:
                raise ValueError("rank columns have inconsistent lengths")

    @property
    def arity(self) -> int:
        return len(self.names)

    def column(self, index: int) -> np.ndarray:
        """The rank column of the attribute at ``index``."""
        return self.ranks[index]

    def tuple_ranks(self, row: int, indices: Sequence[int]) -> Tuple[int, ...]:
        """Project one tuple onto ``indices``, returning its ranks."""
        return tuple(int(self.ranks[i][row]) for i in indices)
