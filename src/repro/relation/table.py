"""In-memory relation instances (tables).

A :class:`Relation` is a small, immutable columnar table: the ``r`` of
the paper.  It is deliberately simple — the heavy lifting happens on the
rank-encoded form (:class:`repro.relation.encoding.EncodedRelation`).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DataError, SchemaError
from repro.relation.encoding import EncodedRelation
from repro.relation.schema import Schema


class Relation:
    """A named, typed, in-memory table.

    Construct via :meth:`from_rows`, :meth:`from_columns`, or
    :func:`repro.relation.csvio.read_csv`.

    >>> r = Relation.from_rows(["a", "b"], [(1, "x"), (2, "y")])
    >>> r.n_rows, r.arity
    (2, 2)
    >>> r.column("b")
    ['x', 'y']
    """

    __slots__ = ("_schema", "_columns", "_n_rows", "_encoded")

    def __init__(self, schema: Schema, columns: Sequence[Sequence[Any]]):
        if len(columns) != schema.arity:
            raise DataError(
                f"schema has {schema.arity} attributes but "
                f"{len(columns)} columns were given")
        columns = [list(col) for col in columns]
        n_rows = len(columns[0]) if columns else 0
        for name, col in zip(schema.names, columns):
            if len(col) != n_rows:
                raise DataError(
                    f"column {name!r} has {len(col)} values, expected {n_rows}")
        self._schema = schema
        self._columns: List[List[Any]] = columns
        self._n_rows = n_rows
        self._encoded: Optional[EncodedRelation] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, names: Iterable[str],
                  rows: Iterable[Sequence[Any]]) -> "Relation":
        """Build a relation from an iterable of equally sized rows."""
        schema = Schema(names)
        columns: List[List[Any]] = [[] for _ in range(schema.arity)]
        for row_number, row in enumerate(rows):
            row = tuple(row)
            if len(row) != schema.arity:
                raise DataError(
                    f"row {row_number} has {len(row)} values, "
                    f"expected {schema.arity}")
            for column, value in zip(columns, row):
                column.append(value)
        return cls(schema, columns)

    @classmethod
    def from_columns(cls, columns: Dict[str, Sequence[Any]]) -> "Relation":
        """Build a relation from a mapping of name -> column values."""
        schema = Schema(columns.keys())
        return cls(schema, [columns[name] for name in schema.names])

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def names(self) -> Tuple[str, ...]:
        return self._schema.names

    @property
    def arity(self) -> int:
        return self._schema.arity

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def column(self, name: str) -> List[Any]:
        """A copy-free view (the internal list) of one column's values."""
        return self._columns[self._schema.index(name)]

    def column_at(self, index: int) -> List[Any]:
        """The column at a schema index."""
        if not 0 <= index < self.arity:
            raise SchemaError(f"column index {index} out of range")
        return self._columns[index]

    def row(self, index: int) -> Tuple[Any, ...]:
        """One tuple of the relation, in schema attribute order."""
        if not 0 <= index < self._n_rows:
            raise DataError(f"row index {index} out of range")
        return tuple(col[index] for col in self._columns)

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over all tuples."""
        for i in range(self._n_rows):
            yield self.row(i)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Relation":
        """A new relation containing only ``names`` (in the given order)."""
        schema = self._schema.project(names)
        columns = [self._columns[self._schema.index(n)] for n in names]
        return Relation(schema, [list(c) for c in columns])

    def take(self, n: int) -> "Relation":
        """The first ``n`` rows (a prefix sample, like the paper's
        tuple-count scaling experiments)."""
        n = max(0, min(n, self._n_rows))
        return Relation(self._schema, [col[:n] for col in self._columns])

    def sample(self, n: int, seed: int = 0) -> "Relation":
        """A uniform random sample of ``n`` rows without replacement."""
        if n >= self._n_rows:
            return self
        rng = random.Random(seed)
        picked = sorted(rng.sample(range(self._n_rows), n))
        return self.select_rows(picked)

    def select_rows(self, indices: Sequence[int]) -> "Relation":
        """A new relation keeping only the given row indices, in order.

        When this relation has already been encoded, the selection's
        encoding is derived by one vectorized re-densification per
        column (:meth:`repro.relation.encoding.EncodedRelation.select_rows`)
        instead of re-keying every surviving cell — the deletion
        analogue of the :meth:`append_rows` fast path.
        """
        columns = [list(map(col.__getitem__, indices))
                   for col in self._columns]
        selected = Relation(self._schema, columns)
        if self._encoded is not None:
            selected._encoded = self._encoded.select_rows(indices)
        return selected

    def drop_rows(self, indices: Iterable[int]) -> "Relation":
        """A new relation with the given row indices removed."""
        banned = set(indices)
        keep = [i for i in range(self._n_rows) if i not in banned]
        return self.select_rows(keep)

    def rename(self, mapping: Dict[str, str]) -> "Relation":
        """A new relation with attributes renamed via ``mapping``."""
        names = [mapping.get(n, n) for n in self._schema.names]
        return Relation(Schema(names), [list(c) for c in self._columns])

    def sort_by(self, names: Sequence[str]) -> "Relation":
        """Rows reordered lexicographically by the given attributes —
        the semantics of SQL ``ORDER BY`` / the paper's order
        specifications.  Stable, so prior order breaks remaining ties.
        Missing values sort first, mixed types per
        :func:`repro.relation.encoding.sort_key`."""
        from repro.relation.encoding import sort_key

        columns = [self.column(name) for name in names]
        order = sorted(
            range(self._n_rows),
            key=lambda row: tuple(sort_key(col[row]) for col in columns))
        return self.select_rows(order)

    def concat(self, other: "Relation") -> "Relation":
        """Rows of ``self`` followed by rows of ``other`` (schemas must
        match exactly)."""
        if self._schema != other._schema:
            raise SchemaError(
                f"cannot concat: schemas differ "
                f"({self.names} vs {other.names})")
        columns = [
            list(mine) + list(theirs)
            for mine, theirs in zip(self._columns, other._columns)
        ]
        return Relation(self._schema, columns)

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """A new relation with ``rows`` appended — the warehouse load
        path.

        When this relation has already been encoded, the appended
        relation's encoding is derived *incrementally*: only the new
        values are keyed and the old rank columns shift through one
        vectorized monotone remap per column
        (:meth:`repro.relation.encoding.EncodedRelation.append_values`),
        instead of re-sorting the whole column.  ``self`` is untouched.
        """
        batch_columns: List[List[Any]] = [[] for _ in range(self.arity)]
        for row_number, row in enumerate(rows):
            row = tuple(row)
            if len(row) != self.arity:
                raise DataError(
                    f"appended row {row_number} has {len(row)} values, "
                    f"expected {self.arity}")
            for column, value in zip(batch_columns, row):
                column.append(value)
        columns = [
            mine + batch for mine, batch in zip(self._columns, batch_columns)
        ]
        appended = Relation(self._schema, columns)
        if self._encoded is not None and self._encoded.keys is not None:
            appended._encoded, _ = self._encoded.append_values(batch_columns)
        return appended

    def append_relation(self, other: "Relation") -> "Relation":
        """:meth:`append_rows` taking another relation's tuples (schemas
        must match exactly)."""
        if self._schema != other._schema:
            raise SchemaError(
                f"cannot append: schemas differ "
                f"({self.names} vs {other.names})")
        return self.append_rows(other.rows())

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self) -> EncodedRelation:
        """Rank-encode all columns (cached; see paper Section 4.6).

        The encoding retains per-column key dictionaries so that
        :meth:`append_rows` can extend it incrementally.
        """
        if self._encoded is None:
            self._encoded = EncodedRelation.from_columns(
                self._schema.names, self._columns)
        return self._encoded

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_rows

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            return (self._schema == other._schema
                    and self._columns == other._columns)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"Relation({list(self.names)!r}, "
                f"n_rows={self._n_rows})")

    def pretty(self, limit: int = 10) -> str:
        """A small fixed-width rendering for logs and examples."""
        header = list(self.names)
        shown = [
            [str(v) for v in self.row(i)]
            for i in range(min(limit, self._n_rows))
        ]
        widths = [
            max(len(header[c]), *(len(r[c]) for r in shown)) if shown
            else len(header[c])
            for c in range(self.arity)
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines.extend(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in shown)
        if self._n_rows > limit:
            lines.append(f"... ({self._n_rows - limit} more rows)")
        return "\n".join(lines)
