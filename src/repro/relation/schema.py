"""Relation schemas: ordered, uniquely named attributes.

A :class:`Schema` is the static description of a relation ``R`` from the
paper: an ordered sequence of attribute names.  Order matters only for
presentation and for stable attribute indexing; the discovery algorithms
work over *sets* (bitmasks) of the indices defined here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from repro.errors import SchemaError


class Schema:
    """An immutable, ordered collection of attribute names.

    >>> s = Schema(["year", "salary", "bin"])
    >>> s.index("salary")
    1
    >>> s.names
    ('year', 'salary', 'bin')
    """

    __slots__ = ("_names", "_index")

    def __init__(self, names: Iterable[str]):
        names = tuple(names)
        if not names:
            raise SchemaError("a schema needs at least one attribute")
        seen = {}
        for position, name in enumerate(names):
            if not isinstance(name, str) or not name:
                raise SchemaError(
                    f"attribute names must be non-empty strings, got {name!r}")
            if name in seen:
                raise SchemaError(f"duplicate attribute name {name!r}")
            seen[name] = position
        self._names: Tuple[str, ...] = names
        self._index = seen

    @property
    def names(self) -> Tuple[str, ...]:
        """The attribute names, in schema order."""
        return self._names

    @property
    def arity(self) -> int:
        """Number of attributes, ``|R|`` in the paper."""
        return len(self._names)

    def index(self, name: str) -> int:
        """Return the 0-based index of ``name``.

        Raises :class:`SchemaError` for unknown attributes.
        """
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {self._names}"
            ) from None

    def indices(self, names: Iterable[str]) -> Tuple[int, ...]:
        """Map several attribute names to their indices, preserving order."""
        return tuple(self.index(name) for name in names)

    def name_of(self, index: int) -> str:
        """Return the attribute name at ``index``."""
        if not 0 <= index < len(self._names):
            raise SchemaError(
                f"attribute index {index} out of range for arity {self.arity}")
        return self._names[index]

    def names_of(self, indices: Iterable[int]) -> Tuple[str, ...]:
        """Map several indices to their attribute names, preserving order."""
        return tuple(self.name_of(i) for i in indices)

    def mask_of(self, names: Iterable[str]) -> int:
        """Return a bitmask with one bit set per named attribute."""
        mask = 0
        for name in names:
            mask |= 1 << self.index(name)
        return mask

    def names_of_mask(self, mask: int) -> Tuple[str, ...]:
        """Decode a bitmask into attribute names, in schema order."""
        return tuple(self._names[i] for i in iter_bits(mask))

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema restricted to ``names`` (in the given order)."""
        for name in names:
            self.index(name)  # validate
        return Schema(names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._names == other._names
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:
        return f"Schema({list(self._names)!r})"


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order.

    This is the canonical way the library walks attribute sets.

    >>> list(iter_bits(0b1011))
    [0, 1, 3]
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bit_count(mask: int) -> int:
    """Number of attributes in the bitmask (popcount)."""
    return bin(mask).count("1")


def mask_of_indices(indices: Iterable[int]) -> int:
    """Build a bitmask from attribute indices."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask
