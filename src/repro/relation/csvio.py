"""CSV input/output for relations, with light type inference.

The paper's datasets are CSV files from the UCI/HPI repositories; this
module is the loading path a downstream user would take for their own
data.  Values are inferred as ``int``, ``float``, or ``str``; empty
cells become ``None`` (missing).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, List, Optional, Sequence, Union

from repro.errors import DataError
from repro.relation.table import Relation

PathLike = Union[str, Path]


def infer_value(text: str) -> Any:
    """Parse one CSV cell: '' -> None, else int, else float, else str."""
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def read_csv(path: PathLike, *, has_header: bool = True,
             delimiter: str = ",", limit: Optional[int] = None,
             infer_types: bool = True) -> Relation:
    """Load a CSV file into a :class:`Relation`.

    Parameters
    ----------
    path:
        File to read.
    has_header:
        When false, attributes are named ``col0, col1, ...``.
    limit:
        Optional cap on the number of data rows read.
    infer_types:
        When false, all cells stay strings ('' still becomes ``None``).
    """
    with open(path, newline="", encoding="utf-8") as handle:
        return _read(handle, has_header=has_header, delimiter=delimiter,
                     limit=limit, infer_types=infer_types, origin=str(path))


def read_csv_text(text: str, *, has_header: bool = True,
                  delimiter: str = ",", limit: Optional[int] = None,
                  infer_types: bool = True) -> Relation:
    """Like :func:`read_csv` but parses an in-memory string."""
    return _read(io.StringIO(text), has_header=has_header,
                 delimiter=delimiter, limit=limit, infer_types=infer_types,
                 origin="<string>")


def _read(handle, *, has_header: bool, delimiter: str,
          limit: Optional[int], infer_types: bool, origin: str) -> Relation:
    if limit is not None and limit < 0:
        raise DataError(f"{origin}: negative row limit {limit}")
    reader = csv.reader(handle, delimiter=delimiter)
    rows: List[Sequence[str]] = []
    header: Optional[List[str]] = None
    for record in reader:
        if not record:
            continue
        if has_header and header is None:
            header = [name.strip() for name in record]
            continue
        # check before appending so limit=0 really reads zero rows
        if limit is not None and len(rows) >= limit:
            break
        rows.append(record)
    if header is None:
        if not rows:
            raise DataError(f"{origin}: empty CSV")
        header = [f"col{i}" for i in range(len(rows[0]))]
    width = len(header)
    parsed_rows: List[List[Any]] = []
    for row_number, record in enumerate(rows):
        if len(record) != width:
            raise DataError(
                f"{origin}: row {row_number} has {len(record)} cells, "
                f"expected {width}")
        if infer_types:
            parsed_rows.append([infer_value(cell.strip()) for cell in record])
        else:
            parsed_rows.append(
                [None if cell == "" else cell for cell in record])
    return Relation.from_rows(header, parsed_rows)


def write_csv(relation: Relation, path: PathLike, *,
              delimiter: str = ",") -> None:
    """Write a relation to CSV; ``None`` becomes an empty cell."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.names)
        for row in relation.rows():
            writer.writerow(["" if v is None else v for v in row])
