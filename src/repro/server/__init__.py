"""The discovery service layer: OD profiling as a long-lived system.

Everything below the CLI's one-shot entry points already existed —
the unified engine, the shared-memory pool, the incremental engine.
This package turns them into a multi-tenant service:

* :class:`DatasetCatalog` — relations registered under content
  fingerprints, kept resident (encodings + warm partition caches)
  with LRU eviction by byte budget;
* :class:`ResultStore` — discovery results keyed by
  ``(fingerprint, canonical config)``, persisted via the
  :mod:`repro.core.serialize` round-trip, served without
  re-computation;
* :class:`JobScheduler` — discover/validate/violations/append jobs on
  a thread-dispatched queue sharing ONE
  :class:`~repro.parallel.WorkerPool`, with per-job deadline budgets,
  cancellation, and executor telemetry;
* :class:`JobJournal` — a durable append-only ledger (LSN + CRC +
  fsync) of registrations and job transitions, replayed on start so a
  killed server re-registers its datasets, re-queues never-started
  jobs, and marks interrupted ones ``crashed``;
* :class:`ODService` / :class:`ServiceClient` — a stdlib HTTP API and
  its typed client (``repro-od serve`` boots the former).
"""

from repro.server.catalog import CatalogEntry, CatalogError, DatasetCatalog
from repro.server.client import ServiceClient, ServiceClientError
from repro.server.http import ODService, ServiceError
from repro.server.jobs import Job, JobError, JobScheduler
from repro.server.journal import JobJournal, JournalError
from repro.server.store import ResultStore

__all__ = [
    "CatalogEntry",
    "CatalogError",
    "DatasetCatalog",
    "Job",
    "JobError",
    "JobJournal",
    "JobScheduler",
    "JournalError",
    "ODService",
    "ResultStore",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
]
