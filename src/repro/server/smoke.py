"""The server smoke suite: ``python -m repro.server.smoke``.

Boots a real ``repro-od serve`` subprocess on an ephemeral port and
drives the documented tenant flow end to end through the typed
client:

1. register a dataset,
2. cold discover — byte-identical to a direct in-process
   :class:`~repro.core.fastod.FastOD` run,
3. cached re-discover — ``cached=True`` with *zero-task* executor
   telemetry (no re-traversal happened),
4. append a batch — the response re-keys the dataset and the grown
   content's discover is again a pure store hit,
5. apply a weighted delta (update + delete) — the response re-keys
   again and discovery matches a direct run on the mutated relation,
6. poll the job list, then

interrupt the server with SIGINT and assert the hygiene contract:
exit code 130, **no leaked shared-memory segments**, and **no orphan
worker processes** (every child alive during the run must be gone).

A second phase boots a journaled server, streams a delta, ``kill
-9``s it mid-flight, reboots on the same ``--journal-dir``, and
asserts the replayed dataset answers discovery byte-identically to a
direct run on the mutated relation — the crash-consistency contract
of the delta WAL, exercised against a real process.

This is the CI gate for the service layer; it runs with
``REPRO_WORKERS=2`` so the shared pool really exists and really gets
torn down.  Exit status 0 = green.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Set

from repro.core.fastod import FastOD, FastODConfig
from repro.datasets import make_dataset
from repro.engine.telemetry import total_tasks
from repro.relation.table import Relation
from repro.server.client import ServiceClient

DATASET = dict(family="flight", n_rows=2000, n_attrs=6, seed=17)


def shm_segments() -> Set[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.iterdir()}


def child_pids(parent: int) -> List[int]:
    """PIDs whose direct parent is ``parent`` (Linux /proc scan)."""
    children = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        # field 4 (after the parenthesised comm, which may hold
        # spaces) is ppid
        ppid = int(stat.rsplit(")", 1)[-1].split()[1])
        if ppid == parent:
            children.append(int(entry.name))
    return children


def pid_alive(pid: int) -> bool:
    """True for a live, non-zombie process (a zombie is dead — it
    merely awaits reaping by init)."""
    try:
        stat = Path(f"/proc/{pid}/stat").read_text()
    except OSError:
        return False
    return stat.rsplit(")", 1)[-1].split()[0] != "Z"


def wait_for_exit(pids: List[int], timeout: float = 10.0) -> List[int]:
    """PIDs still alive after ``timeout`` (dying workers get a bounded
    grace period — process teardown is asynchronous)."""
    deadline = time.monotonic() + timeout
    remaining = list(pids)
    while remaining and time.monotonic() < deadline:
        remaining = [pid for pid in remaining if pid_alive(pid)]
        if remaining:
            time.sleep(0.1)
    return remaining


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        raise SystemExit(f"smoke check failed: {label}")


def main() -> int:
    shm_before = shm_segments()
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", str(
        Path(__file__).resolve().parents[2]))
    env["REPRO_WORKERS"] = env.get("REPRO_WORKERS", "2")
    env["PYTHONUNBUFFERED"] = "1"

    print("booting repro-od serve on an ephemeral port ...")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env)
    workers: List[int] = []
    try:
        ready = server.stdout.readline()
        check("listening on" in ready, f"server ready ({ready.strip()})")
        client = ServiceClient(ready.strip().rsplit(" ", 1)[-1])

        check(client.health()["status"] == "ok", "GET /health")

        entry = client.register_dataset(**DATASET)
        fp = entry["fingerprint"]
        check(len(fp) == 64, f"registered {DATASET['family']} as "
                             f"{fp[:12]}…")

        # force pool dispatch (the dataset sits below the grouped-rows
        # threshold) so the trace check below sees real worker spans —
        # work-shaping config never changes the answer
        cold = client.discover(
            fp, config={"workers": 2, "parallel_min_grouped_rows": 0})
        check(cold["status"] == "done" and not cold["cached"],
              "cold discover completed (pooled)")
        relation = make_dataset(
            DATASET["family"], n_rows=DATASET["n_rows"],
            n_attrs=DATASET["n_attrs"], seed=DATASET["seed"])
        direct = FastOD(relation, FastODConfig()).run().to_dict()
        check(cold["result"]["fds"] == direct["fds"]
              and cold["result"]["ocds"] == direct["ocds"],
              "cold result byte-identical to direct FastOD "
              f"({direct['n_fds']} FDs + {direct['n_ocds']} OCDs)")

        warm = client.discover(fp)
        check(warm["cached"] is True, "re-discover served from store")
        check(total_tasks(warm.get("executor")) == 0,
              "cached hit ran zero executor tasks")
        check(warm["result"]["fds"] == direct["fds"],
              "cached result identical")

        # --- observability surface, scraped mid-run -----------------
        text = client.metrics()
        check(text.startswith("# HELP") and text.endswith("\n"),
              "GET /metrics renders Prometheus text")

        def scrape(sample: str) -> float:
            for line in text.splitlines():
                if line.startswith(sample + " ") \
                        or line.startswith(sample + "{"):
                    return float(line.rsplit(" ", 1)[1])
            return 0.0

        check(scrape('repro_jobs_finished_total'
                     '{kind="discover",status="done"}') >= 2,
              "job counters count both discovers")
        check(scrape('repro_store_lookups_total'
                     '{outcome="hit"}') >= 1,
              "store hit counter moved on the cached re-discover")
        check(scrape("repro_executor_tasks_total") > 0,
              "executor task counters non-zero")
        check(scrape("repro_http_requests_total") > 0,
              "HTTP request counters non-zero")

        stats = client.stats()
        check(stats["uptime_seconds"] > 0
              and "repro_job_seconds" in stats["metrics"],
              "GET /stats returns the JSON snapshot")

        spans = client.trace(cold["id"])["spans"]
        level_spans = [s for s in spans if s["name"] == "level"]
        check(spans and spans[0]["name"] == "job",
              f"cold job trace captured ({len(spans)} spans)")
        check(level_spans and all(s["seconds"] > 0.0
                                  for s in level_spans),
              "per-level span timings recorded "
              f"({len(level_spans)} levels)")
        check(client.trace(warm["id"])["spans"] == [],
              "cached job trace is empty (no traversal)")

        task_spans = [s for s in spans if s["name"] == "task"]
        check(task_spans and all(s["pid"] != server.pid
                                 for s in task_spans),
              "worker task spans spliced into the job trace "
              f"({len(task_spans)} tasks)")
        folded = client.profile(cold["id"])
        check(bool(folded.strip()) and all(
            line.rsplit(" ", 1)[1].isdigit()
            for line in folded.splitlines()),
            "GET /jobs/{id}/profile returns collapsed stacks "
            f"({len(folded.splitlines())} lines)")

        cold_job = client.job(cold["id"])
        resources = cold_job.get("resources") or {}
        check(resources.get("cpu_user_seconds", -1.0) >= 0.0
              and resources.get("max_rss_bytes", 0) > 0,
              "per-job rusage covers CPU and peak RSS")
        check(resources.get("workers", {}).get("processes", 0) >= 1
              and resources.get("shm_bytes", 0) > 0,
              "worker processes and shm bytes billed to the job")
        check(cold_job.get("trace_id") and "resources"
              in stats and "self" in stats["resources"],
              "trace ids and process rusage exposed")

        # the pool exists now — remember the worker pids for the
        # orphan check
        workers = child_pids(server.pid)

        batch = [[int(v) for v in relation.row(i)] for i in range(20)]
        appended = client.append(fp, batch)
        check(appended["status"] == "done", "append folded a batch in")
        new_fp = appended["fingerprint"]
        check(new_fp != fp, "append re-keyed the dataset")
        post = client.discover(new_fp)
        check(post["cached"] is True,
              "post-append discover is a store hit")
        grown = relation.append_rows(batch)
        grown_direct = FastOD(grown, FastODConfig()).run().to_dict()
        check(post["result"]["fds"] == grown_direct["fds"]
              and post["result"]["ocds"] == grown_direct["ocds"],
              "appended result byte-identical to direct FastOD on "
              "the grown relation")

        # a general delta: update one row, delete another
        victim = [int(v) for v in grown.row(0)]
        target = [int(v) for v in grown.row(1)]
        mutated_new = [v + 1 for v in target]
        deltad = client.delta(new_fp, deletes=[victim],
                              updates=[[target, mutated_new]])
        check(deltad["status"] == "done"
              and deltad["report"]["n_deleted"] == 2,
              "delta folded an update + delete in")
        delta_fp = deltad["fingerprint"]
        check(delta_fp != new_fp, "delta re-keyed the dataset")
        check(client.dataset(new_fp)["fingerprint"] == delta_fp,
              "pre-delta fingerprint forwards to the live entry")
        mutated = grown.drop_rows([0, 1]).append_rows([tuple(mutated_new)])
        mutated_direct = FastOD(mutated, FastODConfig()).run().to_dict()
        post_delta = client.discover(delta_fp)
        check(post_delta["result"]["fds"] == mutated_direct["fds"]
              and post_delta["result"]["ocds"] == mutated_direct["ocds"],
              "delta'd result byte-identical to direct FastOD on "
              "the mutated relation")
        check(all(r["fingerprint"] != new_fp
                  for r in client.results()),
              "stale results evicted for the retired fingerprint")

        jobs = client.jobs()
        check(len(jobs) >= 5 and all(
            job["status"] == "done" for job in jobs),
            f"job ledger consistent ({len(jobs)} jobs, all done)")
        check(any(r["fingerprint"] == delta_fp
                  for r in client.results()),
              "result store holds the live fingerprint")
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGINT)
            try:
                server.wait(timeout=30)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()

    check(server.returncode == 130,
          f"SIGINT exit code 130 (got {server.returncode})")
    stderr_tail = server.stderr.read()
    check('"event": "metrics.final"' in stderr_tail,
          "final metrics snapshot dumped on SIGINT teardown")
    leaked = shm_segments() - shm_before
    check(not leaked, f"no leaked shm segments {sorted(leaked) or ''}")
    orphans = wait_for_exit(workers)
    check(not orphans, f"no orphan worker processes {orphans or ''}")

    crash_recovery_phase(env)
    print("smoke suite green")
    return 0


def crash_recovery_phase(env: dict) -> None:
    """kill -9 a journaled server mid-stream; the reboot must replay
    the delta WAL and serve byte-identical discovery."""
    print("crash-recovery phase: journaled server + kill -9 ...")
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as jdir:
        boot = [sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--journal-dir", jdir]
        columns = ["a", "b", "c"]
        rows = [[i % 5, i % 3, i] for i in range(60)]
        server = subprocess.Popen(
            boot, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            ready = server.stdout.readline()
            check("listening on" in ready, "journaled server ready")
            client = ServiceClient(ready.strip().rsplit(" ", 1)[-1])
            fp = client.register_rows(columns, rows)["fingerprint"]
            folded = client.delta(
                fp, deletes=[rows[0]],
                updates=[[rows[1], [9, 9, 9]]], inserts=[[7, 7, 7]])
            check(folded["status"] == "done"
                  and folded.get("lsn") == 1,
                  "journaled delta applied at LSN 1")
            live_fp = folded["fingerprint"]
        finally:
            server.kill()                 # SIGKILL: no teardown path
            server.wait()
            server.stdout.close()
            server.stderr.close()
        server = subprocess.Popen(
            boot, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            ready = server.stdout.readline()
            check("listening on" in ready,
                  "rebooted on the same journal")
            client = ServiceClient(ready.strip().rsplit(" ", 1)[-1])
            recovered = client.health()["recovered"]
            check(recovered["delta_batches"] == 1
                  and recovered["delta_errors"] == 0,
                  "boot replay folded the logged delta")
            entry = client.dataset(fp)
            check(entry["fingerprint"] == live_fp
                  and entry["delta_lsn"] == 1,
                  "dataset re-keyed to the post-delta fingerprint")
            mutated = Relation.from_rows(
                columns, [tuple(r) for r in rows[2:]]
                + [(9, 9, 9), (7, 7, 7)])
            direct = FastOD(mutated, FastODConfig()).run().to_dict()
            replayed = client.discover(live_fp)
            check(replayed["result"]["fds"] == direct["fds"]
                  and replayed["result"]["ocds"] == direct["ocds"],
                  "recovered discovery byte-identical to direct "
                  "FastOD on the mutated relation")
            resumed = client.delta(live_fp, inserts=[[8, 8, 8]])
            check(resumed["status"] == "done"
                  and resumed.get("lsn") == 2,
                  "delta stream resumes at the next LSN")
        finally:
            if server.poll() is None:
                server.send_signal(signal.SIGINT)
                try:
                    server.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    server.kill()
                    server.wait()
            server.stdout.close()
            server.stderr.close()


if __name__ == "__main__":
    sys.exit(main())
