"""The server smoke suite: ``python -m repro.server.smoke``.

Boots a real ``repro-od serve`` subprocess on an ephemeral port and
drives the documented tenant flow end to end through the typed
client:

1. register a dataset,
2. cold discover — byte-identical to a direct in-process
   :class:`~repro.core.fastod.FastOD` run,
3. cached re-discover — ``cached=True`` with *zero-task* executor
   telemetry (no re-traversal happened),
4. append a batch — the response re-keys the dataset and the grown
   content's discover is again a pure store hit,
5. poll the job list, then

interrupt the server with SIGINT and assert the hygiene contract:
exit code 130, **no leaked shared-memory segments**, and **no orphan
worker processes** (every child alive during the run must be gone).

This is the CI gate for the service layer; it runs with
``REPRO_WORKERS=2`` so the shared pool really exists and really gets
torn down.  Exit status 0 = green.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Set

from repro.core.fastod import FastOD, FastODConfig
from repro.datasets import make_dataset
from repro.engine.telemetry import total_tasks
from repro.server.client import ServiceClient

DATASET = dict(family="flight", n_rows=2000, n_attrs=6, seed=17)


def shm_segments() -> Set[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.iterdir()}


def child_pids(parent: int) -> List[int]:
    """PIDs whose direct parent is ``parent`` (Linux /proc scan)."""
    children = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        # field 4 (after the parenthesised comm, which may hold
        # spaces) is ppid
        ppid = int(stat.rsplit(")", 1)[-1].split()[1])
        if ppid == parent:
            children.append(int(entry.name))
    return children


def pid_alive(pid: int) -> bool:
    """True for a live, non-zombie process (a zombie is dead — it
    merely awaits reaping by init)."""
    try:
        stat = Path(f"/proc/{pid}/stat").read_text()
    except OSError:
        return False
    return stat.rsplit(")", 1)[-1].split()[0] != "Z"


def wait_for_exit(pids: List[int], timeout: float = 10.0) -> List[int]:
    """PIDs still alive after ``timeout`` (dying workers get a bounded
    grace period — process teardown is asynchronous)."""
    deadline = time.monotonic() + timeout
    remaining = list(pids)
    while remaining and time.monotonic() < deadline:
        remaining = [pid for pid in remaining if pid_alive(pid)]
        if remaining:
            time.sleep(0.1)
    return remaining


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        raise SystemExit(f"smoke check failed: {label}")


def main() -> int:
    shm_before = shm_segments()
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", str(
        Path(__file__).resolve().parents[2]))
    env["REPRO_WORKERS"] = env.get("REPRO_WORKERS", "2")
    env["PYTHONUNBUFFERED"] = "1"

    print("booting repro-od serve on an ephemeral port ...")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env)
    workers: List[int] = []
    try:
        ready = server.stdout.readline()
        check("listening on" in ready, f"server ready ({ready.strip()})")
        client = ServiceClient(ready.strip().rsplit(" ", 1)[-1])

        check(client.health()["status"] == "ok", "GET /health")

        entry = client.register_dataset(**DATASET)
        fp = entry["fingerprint"]
        check(len(fp) == 64, f"registered {DATASET['family']} as "
                             f"{fp[:12]}…")

        cold = client.discover(fp)
        check(cold["status"] == "done" and not cold["cached"],
              "cold discover completed")
        relation = make_dataset(
            DATASET["family"], n_rows=DATASET["n_rows"],
            n_attrs=DATASET["n_attrs"], seed=DATASET["seed"])
        direct = FastOD(relation, FastODConfig()).run().to_dict()
        check(cold["result"]["fds"] == direct["fds"]
              and cold["result"]["ocds"] == direct["ocds"],
              "cold result byte-identical to direct FastOD "
              f"({direct['n_fds']} FDs + {direct['n_ocds']} OCDs)")

        warm = client.discover(fp)
        check(warm["cached"] is True, "re-discover served from store")
        check(total_tasks(warm.get("executor")) == 0,
              "cached hit ran zero executor tasks")
        check(warm["result"]["fds"] == direct["fds"],
              "cached result identical")

        # --- observability surface, scraped mid-run -----------------
        text = client.metrics()
        check(text.startswith("# HELP") and text.endswith("\n"),
              "GET /metrics renders Prometheus text")

        def scrape(sample: str) -> float:
            for line in text.splitlines():
                if line.startswith(sample + " ") \
                        or line.startswith(sample + "{"):
                    return float(line.rsplit(" ", 1)[1])
            return 0.0

        check(scrape('repro_jobs_finished_total'
                     '{kind="discover",status="done"}') >= 2,
              "job counters count both discovers")
        check(scrape('repro_store_lookups_total'
                     '{outcome="hit"}') >= 1,
              "store hit counter moved on the cached re-discover")
        check(scrape("repro_executor_tasks_total") > 0,
              "executor task counters non-zero")
        check(scrape("repro_http_requests_total") > 0,
              "HTTP request counters non-zero")

        stats = client.stats()
        check(stats["uptime_seconds"] > 0
              and "repro_job_seconds" in stats["metrics"],
              "GET /stats returns the JSON snapshot")

        spans = client.trace(cold["id"])["spans"]
        level_spans = [s for s in spans if s["name"] == "level"]
        check(spans and spans[0]["name"] == "job",
              f"cold job trace captured ({len(spans)} spans)")
        check(level_spans and all(s["seconds"] > 0.0
                                  for s in level_spans),
              "per-level span timings recorded "
              f"({len(level_spans)} levels)")
        check(client.trace(warm["id"])["spans"] == [],
              "cached job trace is empty (no traversal)")

        # the pool exists now — remember the worker pids for the
        # orphan check
        workers = child_pids(server.pid)

        batch = [[int(v) for v in relation.row(i)] for i in range(20)]
        appended = client.append(fp, batch)
        check(appended["status"] == "done", "append folded a batch in")
        new_fp = appended["fingerprint"]
        check(new_fp != fp, "append re-keyed the dataset")
        post = client.discover(new_fp)
        check(post["cached"] is True,
              "post-append discover is a store hit")
        grown = relation.append_rows(batch)
        grown_direct = FastOD(grown, FastODConfig()).run().to_dict()
        check(post["result"]["fds"] == grown_direct["fds"]
              and post["result"]["ocds"] == grown_direct["ocds"],
              "appended result byte-identical to direct FastOD on "
              "the grown relation")

        jobs = client.jobs()
        check(len(jobs) >= 4 and all(
            job["status"] == "done" for job in jobs),
            f"job ledger consistent ({len(jobs)} jobs, all done)")
        check(len(client.results()) >= 2, "result store populated")
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGINT)
            try:
                server.wait(timeout=30)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()

    check(server.returncode == 130,
          f"SIGINT exit code 130 (got {server.returncode})")
    stderr_tail = server.stderr.read()
    check('"event": "metrics.final"' in stderr_tail,
          "final metrics snapshot dumped on SIGINT teardown")
    leaked = shm_segments() - shm_before
    check(not leaked, f"no leaked shm segments {sorted(leaked) or ''}")
    orphans = wait_for_exit(workers)
    check(not orphans, f"no orphan worker processes {orphans or ''}")
    print("smoke suite green")
    return 0


if __name__ == "__main__":
    sys.exit(main())
