"""The job scheduler: concurrent submission, serialised execution.

The service accepts jobs from many HTTP threads at once but runs them
one at a time on a single runner thread.  That is a deliberate trade,
not a limitation:

* **one shared** :class:`~repro.parallel.WorkerPool` serves every job
  (discover products/scans, append-path re-scans, big validate
  checks).  A pool is bound to one encoded relation at a time, so the
  runner rebases it per job — safe precisely because execution is
  serialised — and process workers, published columns, and shared
  segments are paid for once per server instead of once per request;
* intra-job parallelism (the level-wise sharding of PR 3/4) already
  uses every core; running two discoveries concurrently would only
  interleave their pool dispatches;
* serialised execution keeps the byte-identical guarantee trivially:
  an interleaved job stream produces exactly the results of running
  each job alone (``tests/parallel/test_shared_pool_jobs.py`` asserts
  this against direct-API runs).

Job lifecycle: ``queued → running → done | failed | cancelled``
(plus terminal ``crashed``, assigned only during journal recovery to
jobs a previous process started but never finished).
Every job carries its own :class:`~repro.engine.DeadlineBudget`;
**only discover traversals consult it** — ``timeout`` bounds a
discover run, and :meth:`JobScheduler.cancel` revokes a *running*
discover's budget cooperatively (the planner stops at its next
check).  Queued jobs of any kind cancel instantly; a running
validate/violations/append has no cooperative check inside its
kernels, so cancelling it returns False and the job completes.
Executor telemetry is surfaced per job — a store-served repeat
request reports a zero-task snapshot, which is how callers (and the
smoke suite) verify no re-traversal happened.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro import faults
from repro.core.fastod import FastOD, FastODConfig
from repro.deltalog import DeltaBatch, DeltaLog, delta_log_path
from repro.engine.budget import DeadlineBudget
from repro.errors import DataError, ReproError
from repro.obs import accounting, events, metrics, profiler, trace
from repro.parallel.pool import WorkerPool, resolve_workers
from repro.relation.fingerprint import fingerprint
from repro.server.catalog import CatalogEntry, DatasetCatalog
from repro.server.journal import JobJournal, JournalError
from repro.server.store import ResultStore
from repro.violations.detect import ViolationDetector

JOB_KINDS = ("discover", "validate", "violations", "append", "delta")

_SUBMITTED = metrics.counter(
    "repro_jobs_submitted_total",
    "Jobs accepted by the scheduler, by kind",
    ("kind",))
_FINISHED = metrics.counter(
    "repro_jobs_finished_total",
    "Jobs reaching a terminal state, by kind and status",
    ("kind", "status"))
_JOB_SECONDS = metrics.histogram(
    "repro_job_seconds",
    "Job wall-clock seconds from start (or submit) to finish, by "
    "kind and terminal status",
    ("kind", "status"))
_QUEUE_DEPTH = metrics.gauge(
    "repro_jobs_queue_depth",
    "Jobs waiting for the runner thread")

#: telemetry reported for store-served requests: no executor ran, so
#: every phase counter is absent — "zero new tasks" by construction
CACHED_EXECUTOR_STATS = {
    "backend": "store",
    "workers": 0,
    "peak_residency_bytes": 0,
    "retries": 0,
    "rebuilds": 0,
    "degraded": False,
    "phases": {},
}

#: Shared-pool rebuilds within :data:`DEGRADE_WINDOW_SECONDS` before
#: the scheduler stops trusting process workers and pins itself to
#: serial execution (graceful degradation: slower, but every job
#: still completes and ``/health`` says why).
DEGRADE_REBUILD_THRESHOLD = 3
DEGRADE_WINDOW_SECONDS = 60.0

#: Terminal jobs retained in the ledger.  A long-lived server must
#: not pin every historical result payload in memory; the oldest
#: finished jobs (and their payloads) are pruned past this bound,
#: queued/running jobs are always kept.
MAX_FINISHED_JOBS = 512

#: FastODConfig fields a job request may set.  Everything else
#: (timeout) has a dedicated job parameter.
_CONFIG_FIELDS = (
    "minimality_pruning", "level_pruning", "key_pruning", "max_level",
    "workers", "parallel_min_grouped_rows", "kernel_backend",
)


class JobError(ReproError):
    """Malformed job parameters or an unusable scheduler."""


class UnknownJobError(JobError):
    """No job answers to this id (HTTP 404)."""


def cached_executor_stats() -> Dict[str, object]:
    """A fresh zero-task telemetry dict per store-served job (jobs
    must never alias one shared mutable ``phases``)."""
    return {**CACHED_EXECUTOR_STATS, "phases": {}}


def config_from_params(params: Optional[Dict]) -> FastODConfig:
    """Build a :class:`FastODConfig` from a request's config dict,
    rejecting unknown knobs (a typo must not silently change the
    result-store key)."""
    params = dict(params or {})
    unknown = set(params) - set(_CONFIG_FIELDS)
    if unknown:
        raise JobError(
            f"unknown config field(s) {sorted(unknown)}; "
            f"supported: {list(_CONFIG_FIELDS)}")
    return FastODConfig(**params)


class Job:
    """One unit of service work and its observable state."""

    __slots__ = ("id", "kind", "fingerprint", "params", "status",
                 "cached", "error", "payload", "executor_stats",
                 "submitted_at", "started_at", "finished_at", "budget",
                 "cancel_requested", "trace", "trace_id", "profile",
                 "resources", "_done", "_defer_done")

    def __init__(self, job_id: str, kind: str, fingerprint: str,
                 params: Dict):
        self.id = job_id
        self.kind = kind
        self.fingerprint = fingerprint
        self.params = params
        self.status = "queued"
        self.cached = False
        self.error: Optional[str] = None
        self.payload: Optional[Dict] = None
        self.executor_stats: Optional[Dict] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.budget: Optional[DeadlineBudget] = None
        self.cancel_requested = False
        #: span export of this job's run (``GET /jobs/<id>/trace``);
        #: ``None`` until the job actually ran on the runner thread
        self.trace: Optional[List[Dict]] = None
        #: correlation id tying this job's spans, worker exports, and
        #: event lines together
        self.trace_id = trace.new_trace_id()
        #: collapsed flamegraph text (``GET /jobs/<id>/profile``);
        #: ``None`` until the job ran with observability enabled
        self.profile: Optional[str] = None
        #: per-job resource accounting — coordinator + worker rusage,
        #: shm/zero-copy bytes, task counts (``GET /jobs/<id>``)
        self.resources: Optional[Dict] = None
        self._done = threading.Event()
        #: the runner thread sets this while it owns the job so that
        #: waiters only wake after trace/profile/resources are
        #: attached, not at the handler's in-flight ``_finish``
        self._defer_done = False

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "cancelled", "crashed")

    def _finish(self, status: str) -> None:
        self.status = status
        self.finished_at = time.time()
        _FINISHED.inc(kind=self.kind, status=status)
        _JOB_SECONDS.observe(
            self.finished_at - (self.started_at or self.submitted_at),
            kind=self.kind, status=status)
        if not self._defer_done:
            self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "cached": self.cached,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.started_at is not None and self.finished_at is not None:
            payload["seconds"] = self.finished_at - self.started_at
        if self.error is not None:
            payload["error"] = self.error
        if self.payload is not None:
            payload.update(self.payload)
        if self.executor_stats is not None:
            payload["executor"] = self.executor_stats
        if self.resources is not None:
            payload["trace_id"] = self.trace_id
            payload["resources"] = self.resources
        return payload


class JobScheduler:
    """Runs service jobs FIFO on one runner thread and one pool.

    ``workers`` sizes the shared pool (``None`` defers to
    ``REPRO_WORKERS``; 1 = everything serial, no pool is ever
    created).  ``default_timeout`` bounds jobs that do not bring their
    own ``timeout`` parameter.
    """

    def __init__(self, catalog: DatasetCatalog, store: ResultStore,
                 workers: Optional[int] = None,
                 default_timeout: Optional[float] = None,
                 journal: Optional[JobJournal] = None,
                 delta_dir: Optional[Union[str, Path]] = None):
        self._catalog = catalog
        self._store = store
        self._workers = resolve_workers(workers)
        self._default_timeout = default_timeout
        self._journal = journal
        #: directory whose ``deltalog/`` subdir holds per-dataset WALs
        #: (``None`` = delta jobs apply in memory only, no durability)
        self._delta_dir = Path(delta_dir) if delta_dir is not None else None
        #: root fingerprint -> open WAL handle, created lazily by the
        #: runner thread and closed with the scheduler
        self._delta_logs: Dict[str, DeltaLog] = {}
        self._pool: Optional[WorkerPool] = None
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self.pool_rebuilds = 0
        self.journal_errors = 0
        self._rebuild_times: List[float] = []
        self._degraded = False
        self._degraded_reason: Optional[str] = None
        self._runner = threading.Thread(
            target=self._run_loop, name="repro-od-jobs", daemon=True)
        self._runner.start()

    def _journal_event(self, method: str, *args) -> None:
        """Best-effort journal append: a dying journal volume must not
        take the live scheduler down with it."""
        if self._journal is None:
            return
        try:
            getattr(self._journal, method)(*args)
        except JournalError:
            self.journal_errors += 1

    # ------------------------------------------------------------------
    # submission / polling surface (any thread)
    # ------------------------------------------------------------------
    def submit(self, kind: str, fingerprint: str,
               params: Optional[Dict] = None) -> Job:
        """Queue a job; returns immediately with the job record.

        A ``discover`` whose ``(fingerprint, config)`` is already in
        the result store completes *at submission*: status ``done``,
        ``cached=True``, zero-task executor telemetry, no queue trip.
        """
        if kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {kind!r}; supported: {list(JOB_KINDS)}")
        if self._closed:
            raise JobError("the scheduler is shut down")
        params = dict(params or {})
        # validate parameters before the job record exists, so a typo
        # fails the request instead of stranding a queued/failed job
        config = (config_from_params(params.get("config"))
                  if kind in ("discover", "append", "delta") else None)
        if kind in ("validate", "violations"):
            dependency = params.get("dependency")
            if not dependency or not isinstance(dependency, str):
                raise JobError(
                    f"{kind} jobs need a 'dependency' string")
        if kind == "violations":
            try:
                params["witnesses"] = int(params.get("witnesses", 5))
            except (TypeError, ValueError):
                raise JobError("'witnesses' must be an integer") \
                    from None
        if kind == "append":
            rows = params.get("rows")
            if not isinstance(rows, (list, tuple)) or not rows:
                raise JobError(
                    "append jobs need a non-empty 'rows' list")
        # resolve forwards now so the job is pinned to live content
        entry = self._catalog.get(fingerprint)
        if kind == "delta":
            # parse against the entry's arity now, and normalise the
            # convenience lists (inserts/deletes/updates) into one
            # JSON-safe weighted op list — the journal replays it, the
            # WAL records it, and the runner applies it, all verbatim
            try:
                batch = DeltaBatch.from_request(
                    params, entry.relation.arity)
            except DataError as error:
                raise JobError(f"bad delta: {error}") from None
            for key in ("inserts", "deletes", "updates"):
                params.pop(key, None)
            params["ops"] = batch.to_dict()["ops"]
        with self._lock:
            self._next_id += 1
            job = Job(f"job-{self._next_id}", kind, entry.fingerprint,
                      params)
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._prune_finished()
        _SUBMITTED.inc(kind=kind)
        self._journal_event("job_submitted", job.id, kind,
                            entry.fingerprint, params)
        if kind == "discover":
            cached = self._store.get(entry.fingerprint, config)
            if cached is not None:
                job.cached = True
                job.started_at = time.time()
                job.payload = {"result": cached.to_dict()}
                job.executor_stats = cached_executor_stats()
                job._finish("done")
                self._journal_event("job_finished", job.id, "done")
                return job
        self._queue.put(job)
        _QUEUE_DEPTH.set(float(self._queue.qsize()))
        return job

    # ------------------------------------------------------------------
    # journal recovery surface (called before the service goes live)
    # ------------------------------------------------------------------
    def ensure_job_id_floor(self, max_seen: int) -> None:
        """Advance the id sequence past journaled ids so recovered and
        fresh jobs can never collide."""
        with self._lock:
            self._next_id = max(self._next_id, int(max_seen))

    def restore_crashed(self, record: Dict) -> Job:
        """Surface a job a previous process started but never finished
        as terminal ``crashed`` (never silently re-run: an append may
        have had externally visible effects)."""
        job = Job(record["id"], record["kind"], record["fingerprint"],
                  dict(record.get("params") or {}))
        job.error = ("interrupted by a service crash "
                     "(recovered from the journal)")
        job._finish("crashed")
        with self._lock:
            self._jobs[job.id] = job
            self._order.append(job.id)
        self._journal_event("job_finished", job.id, "crashed")
        return job

    def restore_pending(self, record: Dict) -> Job:
        """Re-queue a journaled job that never started, under its
        original id (already journaled as submitted — no new record)."""
        job = Job(record["id"], record["kind"], record["fingerprint"],
                  dict(record.get("params") or {}))
        with self._lock:
            self._jobs[job.id] = job
            self._order.append(job.id)
        _SUBMITTED.inc(kind=job.kind)
        self._queue.put(job)
        _QUEUE_DEPTH.set(float(self._queue.qsize()))
        return job

    def _prune_finished(self) -> None:
        """Drop the oldest terminal jobs past ``MAX_FINISHED_JOBS``
        (caller holds the lock).  Live jobs are never dropped."""
        finished = [job_id for job_id in self._order
                    if self._jobs[job_id].finished]
        for job_id in finished[:max(0, len(finished)
                                    - MAX_FINISHED_JOBS)]:
            del self._jobs[job_id]
            self._order.remove(job_id)

    def job(self, job_id: str) -> Job:
        with self._lock:
            found = self._jobs.get(job_id)
        if found is None:
            raise UnknownJobError(f"unknown job id {job_id!r}")
        return found

    def jobs(self) -> List[Job]:
        """All jobs, oldest first."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> bool:
        """Cancel a job.  Queued jobs cancel instantly; a *running*
        discover has its deadline budget revoked and stops at the
        traversal's next budget check.  Returns False when the cancel
        cannot take effect — the job already finished, or it is a
        running validate/violations/append/delta (those kernels have
        no cooperative budget checks and will complete)."""
        job = self.job(job_id)
        with self._lock:
            if job.finished:
                return False
            job.cancel_requested = True
            if job.status == "queued":
                job._finish("cancelled")
                self._journal_event("job_finished", job.id, "cancelled")
                return True
            if job.kind != "discover":
                # already running without a budget-consulting kernel:
                # be honest that this request changes nothing
                job.cancel_requested = False
                return False
        if job.budget is not None:
            job.budget.cancel()
        return True

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until a job finishes (or ``timeout`` elapses)."""
        job = self.job(job_id)
        job.wait(timeout)
        return job

    def stats(self) -> Dict[str, object]:
        with self._lock:
            by_status: Dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "jobs": by_status,
            "queued": self._queue.qsize(),
            "workers": self._workers,
            "pool_started": self._pool is not None,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded": self._degraded,
            "degraded_reason": self._degraded_reason,
            "journal": (str(self._journal.path)
                        if self._journal is not None else None),
            "journal_errors": self.journal_errors,
        }

    @property
    def degraded(self) -> bool:
        """True once repeated pool crashes pinned the scheduler to
        serial execution (see :data:`DEGRADE_REBUILD_THRESHOLD`)."""
        return self._degraded

    def close(self) -> None:
        """Stop the runner thread and shut the shared pool down."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._runner.join(timeout=30.0)
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        for log in self._delta_logs.values():
            log.close()
        self._delta_logs.clear()

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution (the runner thread only)
    # ------------------------------------------------------------------
    def _shared_pool(self, encoded) -> Optional[WorkerPool]:
        """The one pool every job shares, rebased onto this job's
        relation.  ``None`` when the server runs serial — including
        *degraded* serial, after repeated crash-rebuilds."""
        if self._workers < 2:
            return None
        if self._pool is not None and self._pool.closed:
            self._pool = None           # a crashed dispatch tore it down
            self._note_rebuild()
        if self._degraded:
            return None
        if self._pool is None:
            self._pool = WorkerPool(encoded, self._workers)
        elif self._pool.relation is not encoded:
            self._pool.rebase(encoded)
        return self._pool

    def _note_rebuild(self) -> None:
        """Count one crash-forced pool rebuild; past the threshold
        within the window, pin the scheduler to serial execution."""
        self.pool_rebuilds += 1
        now = time.time()
        self._rebuild_times.append(now)
        self._rebuild_times = [
            t for t in self._rebuild_times
            if now - t <= DEGRADE_WINDOW_SECONDS]
        events.emit("scheduler.pool_rebuild",
                    rebuilds=self.pool_rebuilds,
                    recent=len(self._rebuild_times))
        if (not self._degraded
                and len(self._rebuild_times)
                >= DEGRADE_REBUILD_THRESHOLD):
            self._degraded = True
            self._degraded_reason = (
                f"{len(self._rebuild_times)} worker-pool rebuilds "
                f"within {DEGRADE_WINDOW_SECONDS:.0f}s; execution "
                f"pinned to serial")
            events.emit("scheduler.degraded",
                        reason=self._degraded_reason)

    def _job_config(self, job: Job) -> FastODConfig:
        """The job's requested config — forced to ``workers=1`` when
        the scheduler is degraded.  Safe for the result-store key:
        ``workers`` is a work-shaping knob ``canonical_key`` excludes,
        so degraded and healthy runs share cache entries."""
        params = dict(job.params.get("config") or {})
        if self._degraded:
            params["workers"] = 1
        return config_from_params(params)

    def _run_loop(self) -> None:
        while True:
            job = self._queue.get()
            _QUEUE_DEPTH.set(float(self._queue.qsize()))
            if job is None:
                return
            with self._lock:
                if job.finished:        # cancelled while queued
                    continue
                job.status = "running"
                job.started_at = time.time()
                timeout = job.params.get(
                    "timeout", self._default_timeout)
                job.budget = DeadlineBudget(timeout)
                if job.cancel_requested:
                    job.budget.cancel()
            self._journal_event("job_started", job.id)
            # chaos hooks: widen the started→finished crash window,
            # and race a cooperative cancel against whatever the
            # injected faults do to this job's dispatches
            faults.maybe_sleep("jobs.start.delay")
            if faults.fire("budget.cancel"):
                job.cancel_requested = True
                job.budget.cancel()
            pinned = None
            job._defer_done = True
            buffer = trace.TraceBuffer(trace_id=job.trace_id)
            obs_on = metrics.enabled()
            account = accounting.ResourceAccount() if obs_on else None
            # a dedicated per-job profiler targeting this runner
            # thread — NOT the ambient one, whose fork hook belongs to
            # pool workers
            prof = profiler.SamplingProfiler() if obs_on else None
            if prof is not None:
                prof.start()
            try:
                # pin the entry for the job's whole run: catalog
                # eviction fires on HTTP handler threads and must not
                # close this entry's engines while we use them
                pinned = self._catalog.get(job.fingerprint)
                self._catalog.pin(pinned)
                handler = getattr(self, f"_run_{job.kind}")
                with trace.collect(buffer):
                    with accounting.track(account):
                        with trace.span("job", kind=job.kind,
                                        job=job.id):
                            handler(job)
            except Exception as error:   # noqa: BLE001 — job isolation
                job.error = (
                    f"{type(error).__name__}: {error}\n"
                    + traceback.format_exc(limit=5))
                job._finish("failed")
            finally:
                job.trace = buffer.export()
                if prof is not None:
                    prof.stop()
                if account is not None:
                    counts = prof.counts()
                    profiler.merge_counts(counts,
                                          account.worker_profile,
                                          prefix="worker")
                    job.profile = profiler.render_folded(counts)
                    job.resources = account.finish()
                if pinned is not None:
                    self._catalog.unpin(pinned)
                job._defer_done = False
                if job.finished:
                    job._done.set()
                    self._journal_event("job_finished", job.id,
                                        job.status)
                    if obs_on:
                        events.emit("job.finished", job=job.id,
                                    kind=job.kind, status=job.status,
                                    trace_id=job.trace_id,
                                    resources=job.resources)

    def _finish_ok(self, job: Job, interrupted: bool = False) -> None:
        """``cancelled`` only when the work actually stopped early —
        a cancel that arrives after a job's last budget check still
        yields the completed result as ``done``."""
        if job.cancel_requested and interrupted:
            job._finish("cancelled")
        else:
            job._finish("done")

    def _run_discover(self, job: Job) -> None:
        entry = self._catalog.get(job.fingerprint)
        config = self._job_config(job)
        result = self._store.get(entry.fingerprint, config)
        if result is not None:          # stored while we were queued
            job.cached = True
            job.payload = {"result": result.to_dict()}
            job.executor_stats = cached_executor_stats()
            self._finish_ok(job)
            return
        pool = self._shared_pool(entry.encoded)
        result = FastOD(entry.relation, config, cache=entry.cache,
                        pool=pool).run(budget=job.budget)
        stored = self._store.put(entry.fingerprint, config, result)
        job.payload = {"result": result.to_dict(), "stored": stored}
        job.executor_stats = result.executor_stats
        self._finish_ok(job, interrupted=result.timed_out)

    def _check(self, job: Job, max_witnesses: int, count_pairs: bool
               ) -> None:
        entry = self._catalog.get(job.fingerprint)
        dependency = job.params.get("dependency")
        if not dependency:
            raise JobError(f"{job.kind} jobs need a 'dependency'")
        pool = self._shared_pool(entry.encoded)
        detector = ViolationDetector(
            entry.relation, cache=entry.cache,
            workers=1 if self._degraded else self._workers, pool=pool)
        try:
            report = detector.check(
                dependency, max_witnesses=max_witnesses,
                count_pairs=count_pairs)
            job.payload = {"report": report.to_dict()}
            job.executor_stats = detector.executor_stats()
        finally:
            detector.close()
        self._finish_ok(job)

    def _run_validate(self, job: Job) -> None:
        self._check(job, max_witnesses=0, count_pairs=False)

    def _run_violations(self, job: Job) -> None:
        self._check(job,
                    max_witnesses=int(job.params.get("witnesses", 5)),
                    count_pairs=True)

    def _run_append(self, job: Job) -> None:
        rows = job.params.get("rows")
        if not rows:
            raise JobError("append jobs need non-empty 'rows'")
        entry = self._catalog.get(job.fingerprint)
        try:
            batch = DeltaBatch.inserts(rows, arity=entry.relation.arity)
        except DataError as error:
            raise JobError(f"bad append rows: {error}") from None
        self._apply_delta(job, entry, batch)

    def _run_delta(self, job: Job) -> None:
        batch = DeltaBatch.from_dict({"ops": job.params.get("ops")})
        if not len(batch):
            raise JobError("delta jobs need at least one op")
        entry = self._catalog.get(job.fingerprint)
        self._apply_delta(job, entry, batch)

    def _delta_log(self, root_fp: str) -> Optional[DeltaLog]:
        """The open WAL for one dataset's root fingerprint (runner
        thread only); ``None`` when the service runs without
        durability."""
        if self._delta_dir is None:
            return None
        log = self._delta_logs.get(root_fp)
        if log is None:
            log = DeltaLog(delta_log_path(self._delta_dir, root_fp))
            self._delta_logs[root_fp] = log
        return log

    def _apply_delta(self, job: Job, entry: CatalogEntry,
                     batch: DeltaBatch) -> None:
        """Apply one weighted batch WAL-first.

        Order matters: (1) validate by previewing the post-delta
        relation — op errors (deleting an absent row) and
        would-be-empty datasets fail the job before anything is
        logged; (2) durably append to the dataset's delta WAL — once
        the fsync returns, the delta *happened*, and a crash anywhere
        after this line is repaired by boot-time replay; (3) fold the
        batch into the incremental engine; (4) re-key the catalog
        entry and evict results stored under the retired fingerprint
        (the old key now forwards to mutated content, so serving its
        cached ODs would be silently stale).
        """
        config = self._job_config(job)
        pool = self._shared_pool(entry.encoded)
        engine = self._catalog.ensure_incremental(
            entry.fingerprint, config, pool=pool)
        old_fp = entry.fingerprint
        preview = batch.apply_to(engine.relation)
        if preview.n_rows == 0:
            raise JobError(
                "delta would leave the dataset empty; use "
                "re-registration, not deltas, to replace a dataset")
        fp_after = fingerprint(preview)
        log = self._delta_log(entry.root_fingerprint)
        lsn = (log.append(batch, fp_before=old_fp, fp_after=fp_after)
               if log is not None else None)
        report = engine.apply_delta(batch)
        new_fp = self._catalog.rekey_after_delta(entry, lsn=lsn)
        if new_fp != old_fp:
            self._store.invalidate(old_fp)
        stored = self._store.put(new_fp, engine.config, engine.result)
        job.payload = {
            "report": report.to_dict(),
            "fingerprint": new_fp,
            "result": engine.result.to_dict(),
            "stored": stored,
        }
        if lsn is not None:
            job.payload["lsn"] = lsn
        job.executor_stats = engine.executor_stats()
        self._finish_ok(job)


__all__ = [
    "CACHED_EXECUTOR_STATS",
    "DEGRADE_REBUILD_THRESHOLD",
    "DEGRADE_WINDOW_SECONDS",
    "JOB_KINDS",
    "Job",
    "JobError",
    "JobScheduler",
    "UnknownJobError",
    "cached_executor_stats",
    "config_from_params",
]
