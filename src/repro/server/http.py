"""The HTTP surface: stdlib-only JSON API over catalog/store/jobs.

``ThreadingHTTPServer`` (one thread per connection, no external
dependencies) fronting the service triple.  Handlers only parse JSON,
call the scheduler/catalog/store, and render JSON back — every
decision lives in :mod:`repro.server.jobs` and
:mod:`repro.server.catalog`, so the API layer stays replaceable.

Routes::

    GET    /health                     liveness + component stats
    GET    /metrics                    Prometheus text exposition
    GET    /stats                      JSON metrics snapshot
    GET    /datasets                   catalog listing
    POST   /datasets                   register (csv | rows | dataset)
    GET    /datasets/{fp}              one entry
    POST   /datasets/{fp}/append       append rows (streaming tenants)
    POST   /datasets/{fp}/delta        weighted inserts/deletes/updates
    GET    /jobs                       all jobs, oldest first
    POST   /jobs                       submit {kind, fingerprint, ...}
    GET    /jobs/{id}                  poll one job
    GET    /jobs/{id}/trace            span timeline of one job's run
    GET    /jobs/{id}/profile          collapsed flamegraph text
    DELETE /jobs/{id}                  cancel
    GET    /results                    result-store index
    GET    /results/{fp}               stored results for one dataset

``POST`` bodies are JSON.  Registration accepts one of ``csv`` (the
file's text), ``columns`` + ``rows``, or ``dataset`` (a
:mod:`repro.datasets` family name with ``n_rows``/``n_attrs``/
``seed``).  Blocking submits (``"wait": true``, the default for
append/delta and available for every job kind) hold the connection
until the job finishes — each request has its own thread, so polling
clients and waiting clients coexist.

Crash consistency: with ``--journal-dir`` set, every applied delta is
in the dataset's WAL (``<journal-dir>/deltalog/<root-fp>.log``)
*before* the engine sees it, and boot-time replay folds the log over
the spooled registration — a ``kill -9`` mid-stream loses at most the
delta whose fsync never returned.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.datasets.registry import make_dataset
from repro.deltalog import (
    DeltaLogError,
    DeltaRecord,
    delta_log_path,
    read_delta_log,
    replay_relation,
)
from repro.errors import ReproError
from repro.obs import accounting, events, metrics
from repro.relation.csvio import read_csv_text
from repro.relation.fingerprint import fingerprint
from repro.relation.table import Relation
from repro.server.catalog import DatasetCatalog, UnknownFingerprintError
from repro.server.jobs import JobScheduler, UnknownJobError
from repro.server.journal import JobJournal, JournalError
from repro.server.store import ResultStore

#: ceiling on blocking waits, so an abandoned connection cannot pin a
#: handler thread forever; pollers use GET /jobs/{id} past this
MAX_WAIT_SECONDS = 600.0

#: the content type Prometheus scrapers expect from ``GET /metrics``
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_REQUESTS = metrics.counter(
    "repro_http_requests_total",
    "HTTP requests served, by method, top-level route, and status",
    ("method", "route", "status"))
_REQUEST_SECONDS = metrics.histogram(
    "repro_http_request_seconds",
    "HTTP request wall-clock seconds, by top-level route",
    ("route",))

#: monotone per-process request ids for the structured access log
_REQUEST_IDS = itertools.count(1)


class ServiceError(ReproError):
    """A request the service rejects; carries the HTTP status."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class ODService:
    """The service triple plus the HTTP server wiring.

    >>> service = ODService(port=0)          # ephemeral port
    >>> service.start()
    >>> service.port > 0
    True
    >>> service.close()
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 workers: Optional[int] = None,
                 store_dir: Optional[str] = None,
                 max_resident_bytes: Optional[int] = None,
                 max_cached_partitions: Optional[int] = 64,
                 default_timeout: Optional[float] = None,
                 journal_dir: Optional[str] = None):
        self.catalog = DatasetCatalog(
            max_resident_bytes=max_resident_bytes,
            max_cached_partitions=max_cached_partitions)
        self.store = ResultStore(store_dir)
        self.journal = (JobJournal(journal_dir)
                        if journal_dir is not None else None)
        self.scheduler = JobScheduler(
            self.catalog, self.store, workers=workers,
            default_timeout=default_timeout, journal=self.journal,
            delta_dir=journal_dir)
        #: what journal replay restored (surfaced in ``/health``)
        self.recovered: Dict[str, int] = {
            "datasets": 0, "requeued": 0, "crashed": 0,
            "delta_batches": 0, "delta_errors": 0}
        self._started = time.monotonic()
        if self.journal is not None:
            self._replay_journal()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def _replay_journal(self) -> None:
        """Restore the previous process's ledger before going live:
        re-register journaled datasets from their spooled sources —
        folding each dataset's delta WAL over the snapshot, so
        appended/updated/deleted rows survive the crash warm — then
        re-queue jobs that never started, and surface jobs that died
        mid-run as ``crashed``."""
        state = self.journal.recover()
        for fp, meta in state.datasets.items():
            source = self.journal.read_source(fp)
            if source is None:
                continue            # spool lost: the dataset 404s
            try:
                relation = self._relation_from_body(source)
            except ReproError:
                continue            # unreadable source: skip, serve on
            replayed = self._replay_deltas(fp, relation)
            if replayed is None:
                continue            # torn delta history: honest 404
            relation, records = replayed
            try:
                entry, _ = self.catalog.register_entry(
                    relation, name=meta.get("name"), root=fp)
            except ReproError:
                continue
            if records:
                entry.delta_lsn = records[-1].lsn
                # restore the forwarding trail the crashed process had
                # built live, so clients holding any intermediate
                # fingerprint still resolve to the recovered entry
                for record in records:
                    if record.fp_before:
                        self.catalog.add_forward(
                            record.fp_before, entry.fingerprint)
                self.recovered["delta_batches"] += len(records)
            self.recovered["datasets"] += 1
        self.scheduler.ensure_job_id_floor(state.max_job_id)
        for record in state.crashed_jobs:
            self.scheduler.restore_crashed(record)
            self.recovered["crashed"] += 1
        for record in state.pending_jobs:
            self.scheduler.restore_pending(record)
            self.recovered["requeued"] += 1
        events.emit("journal.replayed", last_lsn=state.last_lsn,
                    finished=state.finished_jobs, **self.recovered)

    def _replay_deltas(
            self, root_fp: str, relation: Relation
    ) -> Optional[Tuple[Relation, "list[DeltaRecord]"]]:
        """Fold a dataset's delta WAL over its registered snapshot.

        Returns the replayed relation plus the records applied, or
        ``None`` when the history cannot be trusted (replay raised, or
        the final fingerprint disagrees with the last record's
        ``fp_after``) — the dataset then 404s rather than serving
        silently stale pre-delta state, and ``delta_errors`` counts it
        in ``/health``.
        """
        path = delta_log_path(self.journal.directory, root_fp)
        if not path.exists():
            return relation, []
        try:
            records = read_delta_log(path)
        except DeltaLogError:
            self.recovered["delta_errors"] += 1
            return None
        if not records:
            return relation, []
        try:
            replayed = replay_relation(
                relation, [record.batch for record in records])
        except ReproError:
            self.recovered["delta_errors"] += 1
            return None
        last = records[-1]
        if (last.fp_after is not None
                and fingerprint(replayed) != last.fp_after):
            self.recovered["delta_errors"] += 1
            return None
        return replayed, records

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved after construction, so ``port=0``
        requests an ephemeral port usable in tests and CI)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve in a background thread (in-process embedding)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-od-http",
            daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI foreground path)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop accepting requests, drain the scheduler, free pools."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.scheduler.close()
        self.catalog.close()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "ODService":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # request-level operations (called from handler threads)
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        scheduler = self.scheduler.stats()
        catalog = self.catalog.stats()
        store = self.store.stats()
        return {
            "status": ("degraded" if scheduler["degraded"] else "ok"),
            "degraded": scheduler["degraded"],
            "degraded_reason": scheduler["degraded_reason"],
            "uptime_seconds": time.monotonic() - self._started,
            "queue_depth": scheduler["queued"],
            "catalog_resident_bytes": catalog["resident_bytes"],
            "store_bytes_written": store["bytes_written"],
            "recovered": dict(self.recovered),
            "catalog": catalog,
            "store": store,
            "scheduler": scheduler,
        }

    def stats(self) -> Dict[str, object]:
        """The observability snapshot (``GET /stats``): every metric
        family in the process-wide registry, plus the component stats
        the registry's gauges mirror."""
        return {
            "uptime_seconds": time.monotonic() - self._started,
            "metrics": metrics.get_registry().snapshot(),
            "resources": accounting.process_rusage(),
            "catalog": self.catalog.stats(),
            "store": self.store.stats(),
            "scheduler": self.scheduler.stats(),
        }

    def register(self, body: Dict) -> Tuple[int, Dict[str, object]]:
        relation = self._relation_from_body(body)
        entry, created = self.catalog.register_entry(
            relation, name=body.get("name"))
        if self.journal is not None and created:
            try:
                self.journal.dataset_registered(
                    entry.fingerprint, entry.name, body)
            except JournalError:
                self.scheduler.journal_errors += 1
        return (201 if created else 200), entry.to_dict()

    def _relation_from_body(self, body: Dict) -> Relation:
        sources = [key for key in ("csv", "rows", "dataset")
                   if body.get(key) is not None]
        if len(sources) != 1:
            raise ServiceError(
                "registration needs exactly one of 'csv', "
                "'rows' (+'columns'), or 'dataset'")
        if body.get("csv") is not None:
            return read_csv_text(body["csv"])
        if body.get("rows") is not None:
            columns = body.get("columns")
            if not columns:
                raise ServiceError(
                    "'rows' registration needs a 'columns' name list")
            return Relation.from_rows(columns, body["rows"])
        return make_dataset(
            body["dataset"],
            n_rows=int(body.get("n_rows", 1000)),
            n_attrs=int(body.get("n_attrs", 10)),
            seed=int(body.get("seed", 42)))

    def submit(self, body: Dict) -> Dict[str, object]:
        kind = body.get("kind")
        fingerprint = body.get("fingerprint")
        if not kind or not fingerprint:
            raise ServiceError("job submission needs 'kind' and "
                               "'fingerprint'")
        params = {key: value for key, value in body.items()
                  if key not in ("kind", "fingerprint", "wait",
                                 "wait_seconds")}
        job = self.scheduler.submit(kind, fingerprint, params)
        if body.get("wait", kind in ("append", "delta")):
            wait = min(float(body.get("wait_seconds",
                                      MAX_WAIT_SECONDS)),
                       MAX_WAIT_SECONDS)
            self.scheduler.wait(job.id, timeout=wait)
        return job.to_dict()

    def append(self, fingerprint: str, body: Dict) -> Dict[str, object]:
        body = dict(body)
        body["kind"] = "append"
        body["fingerprint"] = fingerprint
        return self.submit(body)

    def delta(self, fingerprint: str, body: Dict) -> Dict[str, object]:
        body = dict(body)
        body["kind"] = "delta"
        body["fingerprint"] = fingerprint
        return self.submit(body)


def _make_handler(service: ODService):
    """A handler class closed over the service (stdlib handlers are
    classes, not instances)."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-od"
        protocol_version = "HTTP/1.1"

        # -- plumbing --------------------------------------------------
        def log_message(self, fmt, *args):   # noqa: ARG002 — quiet
            pass

        def _send_raw(self, status: int, body: bytes,
                      content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send(self, status: int, payload: Dict) -> None:
            self._send_raw(
                status, json.dumps(payload, indent=1).encode("utf-8"),
                "application/json")

        def _body(self) -> Dict:
            if self._body_error is not None:
                raise ServiceError(self._body_error)
            return self._parsed_body

        def _read_body(self) -> None:
            """Drain and parse the request body up front — even a
            request that 404s must consume its body, or a keep-alive
            connection desyncs on the unread bytes."""
            self._parsed_body: Dict = {}
            self._body_error = None
            length = int(self.headers.get("Content-Length") or 0)
            if length == 0:
                return
            raw = self.rfile.read(length)
            try:
                parsed = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                self._body_error = "request body is not valid JSON"
                return
            if not isinstance(parsed, dict):
                self._body_error = "request body must be a JSON object"
                return
            self._parsed_body = parsed

        def _route(self, method: str) -> None:
            started = time.perf_counter()
            request_id = next(_REQUEST_IDS)
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            route = parts[0] if parts else "/"
            raw: Optional[bytes] = None
            content_type = "application/json"
            try:
                self._read_body()
                if method == "GET" and parts == ["metrics"]:
                    status = 200
                    raw = metrics.get_registry().render_prometheus() \
                        .encode("utf-8")
                    content_type = PROMETHEUS_CONTENT_TYPE
                elif (method == "GET" and len(parts) == 3
                        and parts[0] == "jobs"
                        and parts[2] == "profile"):
                    # collapsed flamegraph text, not JSON — pipe it
                    # straight into flamegraph.pl / speedscope
                    job = service.scheduler.job(parts[1])
                    status = 200
                    raw = (job.profile or "").encode("utf-8")
                    content_type = "text/plain; charset=utf-8"
                else:
                    status, payload = self._dispatch(method, parts)
            except ServiceError as error:
                status, payload = error.status, {"error": str(error)}
            except (UnknownFingerprintError, UnknownJobError) as error:
                status, payload = 404, {"error": str(error)}
            except ReproError as error:
                # every other library rejection (bad config, bad
                # dependency syntax, schema mismatch) is the
                # client's request, not a missing resource
                status, payload = 400, {"error": str(error)}
            except Exception as error:   # noqa: BLE001 — API boundary
                status = 500
                payload = {"error":
                           f"{type(error).__name__}: {error}"}
            if raw is None:
                raw = json.dumps(payload, indent=1).encode("utf-8")
            self._send_raw(status, raw, content_type)
            seconds = time.perf_counter() - started
            _REQUESTS.inc(method=method, route=route,
                          status=str(status))
            _REQUEST_SECONDS.observe(seconds, route=route)
            events.emit("http.request", id=request_id, method=method,
                        path=self.path, status=status,
                        seconds=round(seconds, 6))

        # -- routing ---------------------------------------------------
        def _dispatch(self, method: str, parts) -> Tuple[int, Dict]:
            if not parts:
                raise ServiceError("not found", status=404)
            head = parts[0]
            if method == "GET" and parts == ["health"]:
                return 200, service.health()
            if method == "GET" and parts == ["stats"]:
                return 200, service.stats()
            if head == "datasets":
                return self._dispatch_datasets(method, parts[1:])
            if head == "jobs":
                return self._dispatch_jobs(method, parts[1:])
            if (head == "results" and method == "GET"
                    and len(parts) <= 2):
                entries = service.store.entries()
                if len(parts) == 2:
                    entries = [e for e in entries
                               if e["fingerprint"] == parts[1]]
                return 200, {"results": entries}
            raise ServiceError("not found", status=404)

        def _dispatch_datasets(self, method: str, rest) -> Tuple[int, Dict]:
            if method == "GET" and not rest:
                return 200, {"datasets": [
                    entry.to_dict()
                    for entry in service.catalog.entries()]}
            if method == "POST" and not rest:
                return service.register(self._body())
            if method == "GET" and len(rest) == 1:
                return 200, service.catalog.get(rest[0]).to_dict()
            if (method == "POST" and len(rest) == 2
                    and rest[1] == "append"):
                return 200, service.append(rest[0], self._body())
            if (method == "POST" and len(rest) == 2
                    and rest[1] == "delta"):
                return 200, service.delta(rest[0], self._body())
            raise ServiceError("not found", status=404)

        def _dispatch_jobs(self, method: str, rest) -> Tuple[int, Dict]:
            if method == "GET" and not rest:
                return 200, {"jobs": [
                    job.to_dict()
                    for job in service.scheduler.jobs()]}
            if method == "POST" and not rest:
                return 202, service.submit(self._body())
            if method == "GET" and len(rest) == 1:
                return 200, service.scheduler.job(rest[0]).to_dict()
            if (method == "GET" and len(rest) == 2
                    and rest[1] == "trace"):
                job = service.scheduler.job(rest[0])
                return 200, {"id": job.id, "status": job.status,
                             "trace_id": job.trace_id,
                             "spans": job.trace or []}
            if method == "DELETE" and len(rest) == 1:
                cancelled = service.scheduler.cancel(rest[0])
                return 200, {"id": rest[0], "cancelled": cancelled}
            raise ServiceError("not found", status=404)

        # -- verbs -----------------------------------------------------
        def do_GET(self) -> None:       # noqa: N802 — stdlib contract
            self._route("GET")

        def do_POST(self) -> None:      # noqa: N802
            self._route("POST")

        def do_DELETE(self) -> None:    # noqa: N802
            self._route("DELETE")

    return Handler


__all__ = ["MAX_WAIT_SECONDS", "ODService", "ServiceError"]
