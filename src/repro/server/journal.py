"""A durable, append-only job journal for the discovery service.

A service that dies mid-job should not forget what it owed.  The
journal is a write-ahead log of the service's *intent*: every dataset
registration and every job state transition is appended — LSN-prefixed,
CRC-guarded, fsync'd — before the service acts on it, and replayed on
the next start so a ``kill -9`` loses at most the in-flight traversal,
never the ledger.

Record format
-------------

The shared WAL line discipline of :mod:`repro.deltalog.records` —
``<lsn> <crc32:08x> <canonical json>\n``, strictly increasing LSNs
from 1, CRC over the payload bytes, clean prefix trusted on replay,
one ``write`` + ``fsync`` per record so only the final line can ever
be torn.  The per-dataset delta WAL (:mod:`repro.deltalog.log`) uses
the same primitives, so both logs share one torn-tail recovery story.

Record types
------------

``dataset``
    A relation was registered.  Its registration *source* (the JSON
    body: csv text, rows+columns, or a generator spec) is spooled to
    ``<dir>/datasets/<fingerprint>.json`` so replay can rebuild the
    exact relation without keeping row data in the log itself.
``submitted`` / ``started`` / ``finished``
    Job lifecycle.  ``finished`` carries the terminal status.

Recovery semantics (:meth:`JobJournal.recover`):

* journaled datasets re-register from their spooled sources;
* jobs submitted but never started are *re-queued* under their
  original ids;
* jobs started but never finished were lost mid-run — they are
  surfaced as ``crashed`` (a terminal status), not silently re-run:
  an append job may have externally visible effects, so the honest
  answer is "this one died; resubmit if you want it".

The journal restores *registrations and the job ledger*, not mutated
dataset state: a streaming tenant's finished appends are recorded as
finished jobs but the relation replayed is the originally registered
snapshot (re-running the appends is the client's call).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.deltalog.records import (
    encode_record,
    read_records,
    trusted_length,
)
from repro.errors import ReproError
from repro.obs import metrics

_APPENDS = metrics.counter(
    "repro_journal_appends_total",
    "Journal records durably appended, by record type",
    ("type",))
_ERRORS = metrics.counter(
    "repro_journal_errors_total",
    "Journal appends that failed with an I/O error")
_FSYNC_SECONDS = metrics.histogram(
    "repro_journal_fsync_seconds",
    "Wall-clock seconds per journal append's write+flush+fsync")

JOURNAL_FILENAME = "journal.log"
DATASETS_DIRNAME = "datasets"

#: Job record types replay understands; unknown types are skipped
#: (forward compatibility: an older binary replaying a newer log).
RECORD_TYPES = ("dataset", "submitted", "started", "finished")


class JournalError(ReproError):
    """An unusable journal directory or an append that failed."""


class RecoveredState:
    """What a replayed journal owes the restarting service."""

    __slots__ = ("datasets", "pending_jobs", "crashed_jobs",
                 "finished_jobs", "last_lsn", "max_job_id")

    def __init__(self):
        #: fingerprint -> {"name": ..., "source": spool path or None}
        self.datasets: "Dict[str, Dict]" = {}
        #: submitted, never started — re-queue under original ids
        self.pending_jobs: List[Dict] = []
        #: started, never finished — surface as terminal ``crashed``
        self.crashed_jobs: List[Dict] = []
        self.finished_jobs = 0
        self.last_lsn = 0
        self.max_job_id = 0


def _job_number(job_id: str) -> int:
    """The numeric suffix of ``job-N`` ids (0 for foreign ids)."""
    try:
        return int(str(job_id).rsplit("-", 1)[-1])
    except ValueError:
        return 0


class JobJournal:
    """Owner handle over one journal directory.

    Opening scans the existing log (any clean prefix) so the LSN
    sequence continues where the previous process stopped;
    :meth:`recover` summarises that scan for the service to act on.
    Appends are serialised by a lock and fsync'd one record at a time
    — job throughput, not disk bandwidth, is the service's bottleneck.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            (self.directory / DATASETS_DIRNAME).mkdir(exist_ok=True)
        except OSError as error:
            raise JournalError(
                f"cannot create journal directory {directory!r}: "
                f"{error}") from error
        self.path = self.directory / JOURNAL_FILENAME
        self._records = read_records(self.path)
        self._lsn = self._records[-1]["lsn"] if self._records else 0
        # re-open past the trusted prefix: a torn tail is overwritten
        # by truncating to the prefix before appending anything new
        trusted = trusted_length(self._records)
        self._handle = open(self.path, "ab")
        if self._handle.tell() > trusted:
            self._handle.truncate(trusted)
            self._handle.seek(trusted)
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # append side
    # ------------------------------------------------------------------
    def _append(self, payload: Dict) -> int:
        with self._lock:
            if self._closed:
                return self._lsn          # shutdown race: drop quietly
            self._lsn += 1
            started = time.perf_counter()
            try:
                self._handle.write(encode_record(self._lsn, payload))
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError as error:
                _ERRORS.inc()
                raise JournalError(
                    f"journal append failed: {error}") from error
            _FSYNC_SECONDS.observe(time.perf_counter() - started)
            _APPENDS.inc(type=str(payload.get("type", "unknown")))
            return self._lsn

    def dataset_registered(self, fingerprint: str, name: str,
                           source: Optional[Dict]) -> None:
        """Journal a registration, spooling its JSON ``source`` body
        (atomically) so replay can rebuild the relation."""
        if source is not None:
            spool = self.dataset_spool(fingerprint)
            tmp = spool.with_suffix(".json.tmp")
            try:
                tmp.write_text(json.dumps(source), encoding="utf-8")
                os.replace(tmp, spool)
            except (OSError, TypeError, ValueError) as error:
                raise JournalError(
                    f"cannot spool dataset source for "
                    f"{fingerprint!r}: {error}") from error
        self._append({"type": "dataset", "fingerprint": fingerprint,
                      "name": name})

    def job_submitted(self, job_id: str, kind: str, fingerprint: str,
                      params: Dict) -> None:
        self._append({"type": "submitted", "id": job_id, "kind": kind,
                      "fingerprint": fingerprint,
                      "params": _json_safe(params)})

    def job_started(self, job_id: str) -> None:
        self._append({"type": "started", "id": job_id})

    def job_finished(self, job_id: str, status: str) -> None:
        self._append({"type": "finished", "id": job_id,
                      "status": status})

    def dataset_spool(self, fingerprint: str) -> Path:
        return (self.directory / DATASETS_DIRNAME
                / f"{fingerprint}.json")

    # ------------------------------------------------------------------
    # replay side
    # ------------------------------------------------------------------
    def recover(self) -> RecoveredState:
        """Fold the trusted prefix into the state the service must
        restore (datasets to re-register, jobs to re-queue or mark
        crashed)."""
        state = RecoveredState()
        jobs: Dict[str, Dict] = {}
        order: List[str] = []
        for record in self._records:
            state.last_lsn = record["lsn"]
            kind = record.get("type")
            if kind == "dataset":
                fp = record["fingerprint"]
                spool = self.dataset_spool(fp)
                state.datasets[fp] = {
                    "name": record.get("name"),
                    "source": spool if spool.exists() else None,
                }
            elif kind == "submitted":
                job = {"id": record["id"], "kind": record["kind"],
                       "fingerprint": record["fingerprint"],
                       "params": record.get("params") or {},
                       "phase": "submitted"}
                jobs[record["id"]] = job
                order.append(record["id"])
                state.max_job_id = max(state.max_job_id,
                                       _job_number(record["id"]))
            elif kind == "started":
                if record["id"] in jobs:
                    jobs[record["id"]]["phase"] = "started"
            elif kind == "finished":
                if record["id"] in jobs:
                    jobs[record["id"]]["phase"] = "finished"
                    state.finished_jobs += 1
        for job_id in order:
            job = jobs[job_id]
            if job["phase"] == "submitted":
                state.pending_jobs.append(job)
            elif job["phase"] == "started":
                state.crashed_jobs.append(job)
        return state

    def read_source(self, fingerprint: str) -> Optional[Dict]:
        """The spooled registration body for a journaled dataset, or
        ``None`` when the spool is missing/corrupt."""
        spool = self.dataset_spool(fingerprint)
        try:
            payload = json.loads(spool.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError:  # pragma: no cover - yanked volume
                pass
            self._handle.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _json_safe(params: Dict) -> Dict:
    """Journaled params must survive a JSON round-trip; anything that
    cannot is dropped (the replayed job fails loudly rather than the
    journal append failing the live one)."""
    safe = {}
    for key, value in params.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            continue
        safe[key] = value
    return safe


__all__ = [
    "DATASETS_DIRNAME",
    "JOURNAL_FILENAME",
    "JobJournal",
    "JournalError",
    "RecoveredState",
    "read_records",
]
