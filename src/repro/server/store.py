"""The result store: discovery output keyed by content + config.

A discovery result is a pure function of ``(rank structure, config)``:
the fingerprint (:func:`repro.relation.fingerprint`) captures the
first, :meth:`~repro.core.fastod.FastODConfig.canonical_key` the
second (work-shaping knobs — workers, key pruning, thresholds — are
excluded because they never change output).  :class:`ResultStore`
memoizes :class:`~repro.core.results.DiscoveryResult` objects under
that pair, so a repeat request is served without re-traversal.

Persistence rides the existing :mod:`repro.core.serialize` round-trip:
every stored result is written as
``<directory>/<fingerprint>/<config-key>.json`` (the same
human-readable format ``save_result`` emits), and a store pointed at a
populated directory indexes it lazily on first lookup — a restarted
server keeps serving yesterday's cache.

Two classes of result are refused:

* ``timed_out`` results — they are partial, and which candidates
  finished depends on the machine's clock, not the key;
* results whose config was not canonically complete (the store trusts
  :meth:`canonical_key`, so callers must pass the config the run used).

Thread safety: one lock around the index; the JSON write itself goes
through a temp-file rename so a crashed writer never leaves a torn
file for the lazy loader.

Fault tolerance: the disk is a cache, not the source of truth — a
result that fails to parse on lazy load is *quarantined* (renamed to
``*.json.corrupt``) and recomputed, and a failed write (disk full,
permission flip, injected ``store.write`` fault) keeps the result
resident in memory and counts a ``write_errors`` instead of failing
the job that produced it.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import faults
from repro.core.fastod import FastODConfig
from repro.core.results import DiscoveryResult
from repro.core.serialize import result_from_dict, result_to_dict
from repro.errors import ReproError
from repro.obs import metrics

StoreKey = Tuple[str, str]

_LOOKUPS = metrics.counter(
    "repro_store_lookups_total",
    "Result-store lookups, by outcome",
    ("outcome",))
_WRITE_ERRORS = metrics.counter(
    "repro_store_write_errors_total",
    "Tolerated result-store disk write failures")
_QUARANTINED = metrics.counter(
    "repro_store_quarantined_total",
    "Unparseable disk entries renamed aside on lazy load")
_BYTES_WRITTEN = metrics.counter(
    "repro_store_bytes_written_total",
    "Serialized result bytes successfully written to disk")
_INVALIDATED = metrics.counter(
    "repro_store_invalidated_total",
    "Stored results dropped because their fingerprint was retired")


class ResultStore:
    """Fingerprint + canonical-config keyed cache of discovery results.

    ``directory=None`` keeps the store purely in memory (tests, or
    ephemeral servers); otherwise results land on disk and survive
    restarts.

    >>> store = ResultStore()
    >>> store.get("fp", FastODConfig()) is None
    True
    """

    def __init__(self, directory: Union[str, Path, None] = None):
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self._results: Dict[StoreKey, DiscoveryResult] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: disk writes that failed (tolerated: the result stays resident)
        self.write_errors = 0
        #: unparseable disk entries renamed to ``*.json.corrupt``
        self.quarantined = 0
        #: serialized bytes successfully written to disk (the store's
        #: byte-usage currency surfaced on ``/health``)
        self.bytes_written = 0

    @staticmethod
    def key(fingerprint: str, config: FastODConfig) -> StoreKey:
        """The ``(fingerprint, canonical config)`` cache key."""
        return (fingerprint, config.canonical_key())

    def _path(self, key: StoreKey) -> Optional[Path]:
        if self._directory is None:
            return None
        return self._directory / key[0] / f"{key[1]}.json"

    # ------------------------------------------------------------------
    # lookup / insert
    # ------------------------------------------------------------------
    def get(self, fingerprint: str,
            config: FastODConfig) -> Optional[DiscoveryResult]:
        """The cached result for this content + config, or ``None``.

        Disk entries written by an earlier process are loaded lazily
        and kept resident afterwards."""
        key = self.key(fingerprint, config)
        with self._lock:
            result = self._results.get(key)
            if result is not None:
                self.hits += 1
                _LOOKUPS.inc(outcome="hit")
                return result
            path = self._path(key)
            if path is not None and path.exists():
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                    result = result_from_dict(payload)
                except (OSError, ValueError, ReproError):
                    result = None
                    self._quarantine(path)  # corrupt/truncated: recompute
                if result is not None:
                    self._results[key] = result
                    self.hits += 1
                    _LOOKUPS.inc(outcome="hit")
                    return result
            self.misses += 1
            _LOOKUPS.inc(outcome="miss")
            return None

    def _quarantine(self, path: Path) -> None:
        """Move an unparseable entry aside (``*.json.corrupt``) so the
        lazy loader stops re-reading it and ``entries()`` stops listing
        it; the result is simply recomputed and rewritten."""
        try:
            os.replace(path, path.with_suffix(".json.corrupt"))
            self.quarantined += 1
            _QUARANTINED.inc()
        except OSError:  # pragma: no cover - racing unlink/eviction
            pass

    def put(self, fingerprint: str, config: FastODConfig,
            result: DiscoveryResult) -> bool:
        """Cache a completed result; returns False (and stores
        nothing) for ``timed_out`` partials."""
        if result.timed_out:
            return False
        key = self.key(fingerprint, config)
        with self._lock:
            self._results[key] = result
        # serialize + write OUTSIDE the lock: the submission fast path
        # (store.get from HTTP threads) must not stall behind a large
        # result's JSON dump.  Only the runner thread writes, and the
        # temp-file rename keeps readers from ever seeing a torn file.
        path = self._path(key)
        if path is not None:
            try:
                faults.maybe_raise("store.write",
                                   f"result write failed for {path}",
                                   exc_type=OSError)
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(".json.tmp")
                rendered = json.dumps(result_to_dict(result), indent=2)
                tmp.write_text(rendered, encoding="utf-8")
                os.replace(tmp, path)
                written = len(rendered.encode("utf-8"))
                with self._lock:
                    self.bytes_written += written
                _BYTES_WRITTEN.inc(written)
            except OSError:
                # disk full / permissions / injected fault: the result
                # is already resident, so the job still succeeds — only
                # restart durability is lost for this entry
                with self._lock:
                    self.write_errors += 1
                _WRITE_ERRORS.inc()
        return True

    def invalidate(self, fingerprint: str) -> int:
        """Drop every stored result (resident and on-disk) for a
        fingerprint that no longer names any live snapshot.

        A delta re-keys its dataset; results cached under the old
        fingerprint describe a relation that has since been mutated,
        and the catalog forwards the old key to the *new* content — so
        serving them would silently answer with stale ODs.  Returns
        how many entries were dropped.
        """
        dropped = 0
        with self._lock:
            stale = [key for key in self._results
                     if key[0] == fingerprint]
            for key in stale:
                del self._results[key]
            dropped += len(stale)
        if self._directory is not None:
            fp_dir = self._directory / fingerprint
            if fp_dir.is_dir():
                for path in sorted(fp_dir.glob("*.json")):
                    try:
                        path.unlink()
                        dropped += 1
                    except OSError:  # pragma: no cover - racing unlink
                        pass
                try:
                    fp_dir.rmdir()
                except OSError:  # pragma: no cover - leftover .corrupt
                    pass
        if dropped:
            _INVALIDATED.inc(dropped)
        return dropped

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def entries(self) -> List[Dict[str, object]]:
        """Every stored result (resident and on-disk), summarised."""
        with self._lock:
            index: Dict[StoreKey, Dict[str, object]] = {}
            for (fp, ckey), result in self._results.items():
                index[(fp, ckey)] = {
                    "fingerprint": fp,
                    "config_key": ckey,
                    "n_ods": result.n_ods,
                    "n_rows": result.n_rows,
                    "resident": True,
                }
            if self._directory is not None and self._directory.exists():
                for fp_dir in sorted(self._directory.iterdir()):
                    if not fp_dir.is_dir():
                        continue
                    for path in sorted(fp_dir.glob("*.json")):
                        key = (fp_dir.name, path.stem)
                        if key not in index:
                            index[key] = {
                                "fingerprint": key[0],
                                "config_key": key[1],
                                "resident": False,
                            }
            return list(index.values())

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "resident": len(self._results),
                "hits": self.hits,
                "misses": self.misses,
                "write_errors": self.write_errors,
                "quarantined": self.quarantined,
                "bytes_written": self.bytes_written,
                "directory": (str(self._directory)
                              if self._directory else None),
            }


__all__ = ["ResultStore", "StoreKey"]
