"""The dataset catalog: fingerprint-keyed resident relations.

A long-lived OD service cannot afford to re-read, re-encode, and
re-partition a relation on every request the way the one-shot CLI
does.  :class:`DatasetCatalog` keeps registered relations *warm*:

* every relation is keyed by its content fingerprint
  (:func:`repro.relation.fingerprint`) — registering byte-equivalent
  data twice lands on the same entry, so tenants uploading the same
  table share encodings, partitions, and cached results;
* each :class:`CatalogEntry` holds the raw :class:`Relation`, its
  rank :class:`~repro.relation.encoding.EncodedRelation` (encoded once
  at registration), and a warm
  :class:`~repro.partitions.cache.PartitionCache` reused by every
  validate/violations job against the entry;
* entries for streaming tenants lazily grow an
  :class:`~repro.incremental.IncrementalFastOD` engine; appends route
  through it, so repeated batches pay delta maintenance instead of
  re-discovery, and the entry is *re-keyed* under the grown relation's
  fingerprint (the old snapshot no longer exists — its key is retired
  and forwarded);
* residency is bounded by a byte budget over the encoded rank columns
  (``max_resident_bytes``): least-recently-*used* entries are evicted
  first, streaming entries included (their incremental engines are
  closed on the way out).  The entry being registered or touched is
  never the eviction victim, and neither is a *pinned* entry — the
  scheduler pins the entry a job is running against, so eviction
  (which fires on HTTP handler threads) can never close an engine the
  runner thread is using.

Thread safety: every public method takes the catalog lock, so HTTP
handler threads and the job-runner thread can share one catalog.  The
heavyweight objects handed out (relations, caches, engines) are then
used *only* by the single job-runner thread — the scheduler serialises
job execution, which is what makes sharing one partition cache and one
worker pool safe.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.core.fastod import FastODConfig
from repro.errors import ReproError
from repro.obs import metrics
from repro.partitions.cache import PartitionCache
from repro.relation.fingerprint import fingerprint
from repro.relation.table import Relation

_REGISTRATIONS = metrics.counter(
    "repro_catalog_registrations_total",
    "Dataset registrations, by whether the entry was created or reused",
    ("outcome",))
_EVICTIONS = metrics.counter(
    "repro_catalog_evictions_total",
    "Catalog entries evicted to stay under the byte budget")
_ENTRIES = metrics.gauge(
    "repro_catalog_entries",
    "Resident catalog entries")
_RESIDENT_BYTES = metrics.gauge(
    "repro_catalog_resident_bytes",
    "Encoded rank-column bytes resident across catalog entries")


class CatalogError(ReproError):
    """A registration or catalog operation the catalog rejects."""


class UnknownFingerprintError(CatalogError):
    """No resident entry answers to this fingerprint (HTTP 404)."""


class CatalogEntry:
    """One resident relation and its warm derived state."""

    __slots__ = ("fingerprint", "name", "relation", "encoded", "cache",
                 "incremental", "registered_at", "last_used_at",
                 "n_appended_batches", "retired_from", "recency",
                 "pins", "root_fingerprint", "delta_lsn")

    def __init__(self, fp: str, relation: Relation, name: str,
                 max_cached_partitions: Optional[int],
                 root: Optional[str] = None):
        self.fingerprint = fp
        #: the content hash at first registration — stable across
        #: delta re-keying, and the key of this dataset's delta WAL
        self.root_fingerprint = root or fp
        #: LSN of the last delta-log record applied to this entry
        self.delta_lsn = 0
        self.name = name
        self.relation = relation
        self.encoded = relation.encode()
        self.cache = PartitionCache(self.encoded,
                                    max_entries=max_cached_partitions)
        #: lazily created on the first append to this entry
        self.incremental = None
        self.registered_at = time.time()
        self.last_used_at = self.registered_at
        #: monotone use counter — the LRU ordering key (wall-clock
        #: timestamps tie at microsecond granularity)
        self.recency = 0
        #: active pins (a running job) — a pinned entry is never the
        #: eviction victim, so eviction cannot close an engine mid-job
        self.pins = 0
        self.n_appended_batches = 0
        #: fingerprints this entry previously answered to (append
        #: re-keying leaves a forwarding trail)
        self.retired_from: List[str] = []

    @property
    def resident_bytes(self) -> int:
        """The eviction-budget currency: encoded rank column bytes.
        (Partitions ride along; their growth is bounded separately by
        the entry cache's ``max_entries``.)"""
        return self.encoded.rank_nbytes

    def close(self) -> None:
        if self.incremental is not None:
            self.incremental.close()
            self.incremental = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "root_fingerprint": self.root_fingerprint,
            "delta_lsn": self.delta_lsn,
            "name": self.name,
            "n_rows": self.relation.n_rows,
            "arity": self.relation.arity,
            "attributes": list(self.relation.names),
            "resident_bytes": self.resident_bytes,
            "registered_at": self.registered_at,
            "last_used_at": self.last_used_at,
            "streaming": self.incremental is not None,
            "n_appended_batches": self.n_appended_batches,
            "retired_from": list(self.retired_from),
            "partition_cache": self.cache.stats(),
        }


class DatasetCatalog:
    """Registers relations under content fingerprints with LRU
    eviction by byte budget.

    >>> from repro.relation.table import Relation
    >>> catalog = DatasetCatalog()
    >>> entry = catalog.register(Relation.from_rows(
    ...     ["a", "b"], [(1, 2), (3, 4)]), name="tiny")
    >>> catalog.get(entry.fingerprint) is entry
    True
    """

    def __init__(self, max_resident_bytes: Optional[int] = None,
                 max_cached_partitions: Optional[int] = 64):
        if max_resident_bytes is not None and max_resident_bytes < 1:
            raise ValueError(
                "max_resident_bytes must be a positive integer")
        self._max_resident_bytes = max_resident_bytes
        self._max_cached_partitions = max_cached_partitions
        #: fingerprint -> entry, least-recently-used first
        self._entries: Dict[str, CatalogEntry] = {}
        #: retired fingerprint -> current fingerprint (append re-keys)
        self._forwards: Dict[str, str] = {}
        self._lock = threading.RLock()
        self._use_counter = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # registration and lookup
    # ------------------------------------------------------------------
    def register(self, relation: Relation,
                 name: Optional[str] = None) -> CatalogEntry:
        """Register a relation, returning its (possibly pre-existing)
        entry.  Re-registering content with the same rank structure is
        free and refreshes the entry's recency."""
        entry, _ = self.register_entry(relation, name=name)
        return entry

    def register_entry(self, relation: Relation,
                       name: Optional[str] = None,
                       root: Optional[str] = None
                       ) -> "tuple[CatalogEntry, bool]":
        """:meth:`register` plus a ``created`` flag, decided under the
        catalog lock — the fingerprint is computed exactly once and
        concurrent registrations of the same content cannot both
        observe "new".  ``root`` pins the entry's root fingerprint
        (boot-time delta replay registers the *replayed* relation under
        the original registration's WAL key)."""
        if relation.n_rows == 0:
            raise CatalogError("refusing to register an empty relation")
        fp = fingerprint(relation)
        with self._lock:
            entry = self._entries.get(fp)
            created = entry is None
            if created:
                entry = CatalogEntry(fp, relation, name or fp[:12],
                                     self._max_cached_partitions,
                                     root=root)
                self._entries[fp] = entry
                # a live entry always outranks an append forward: if
                # this fingerprint was retired earlier, re-registering
                # the original snapshot must resolve to it, not be
                # shadowed onto the grown relation
                self._forwards.pop(fp, None)
            _REGISTRATIONS.inc(outcome="created" if created else "reused")
            self._touch(entry)
            self._evict_over_budget(keep=fp)
            self._sync_gauges()
            return entry, created

    def get(self, fp: str) -> CatalogEntry:
        """The entry for ``fp``, following append forwards; refreshes
        recency.  Raises :class:`UnknownFingerprintError` when
        unknown."""
        with self._lock:
            seen = set()
            # live entries win over forwards at every hop
            while (fp not in self._entries
                   and fp in self._forwards and fp not in seen):
                seen.add(fp)
                fp = self._forwards[fp]
            entry = self._entries.get(fp)
            if entry is None:
                raise UnknownFingerprintError(
                    f"unknown dataset fingerprint {fp!r}")
            self._touch(entry)
            return entry

    def __contains__(self, fp: str) -> bool:
        with self._lock:
            return fp in self._entries or fp in self._forwards

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> List[CatalogEntry]:
        """All resident entries, most recently used first."""
        with self._lock:
            return sorted(self._entries.values(),
                          key=lambda e: e.recency, reverse=True)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(e.resident_bytes for e in self._entries.values())

    # ------------------------------------------------------------------
    # the streaming (append) path
    # ------------------------------------------------------------------
    def ensure_incremental(self, fp: str, config: FastODConfig,
                           pool=None):
        """The entry's delta-maintenance engine, created on first use.

        ``pool`` is the scheduler's shared :class:`WorkerPool`; it is
        injected so append scans run on the same workers as every
        other job.  The engine's config is fixed at creation — later
        appends reuse it regardless of per-request config (the result
        store key records which config the maintained result answers).
        """
        from repro.incremental import IncrementalFastOD

        entry = self.get(fp)
        if entry.incremental is None:
            entry.incremental = IncrementalFastOD(
                entry.relation, config, pool=pool)
        return entry.incremental

    def rekey_after_delta(self, entry: CatalogEntry,
                          lsn: Optional[int] = None) -> str:
        """Re-key an entry whose incremental engine just applied a
        delta (append, update, or delete).

        The old fingerprint no longer names any existing snapshot; it
        is retired and forwarded, so clients holding the pre-delta
        fingerprint keep resolving to the live entry.  ``lsn`` (the
        delta WAL record just applied) is recorded even when the
        content fingerprint is unchanged — a cancelling batch still
        advances the log.  Returns the new fingerprint.
        """
        engine = entry.incremental
        if engine is None:
            raise CatalogError(
                f"entry {entry.fingerprint!r} has no incremental engine")
        with self._lock:
            if lsn is not None:
                entry.delta_lsn = lsn
            old_fp = entry.fingerprint
            new_fp = fingerprint(engine.relation)
            if new_fp == old_fp:
                return old_fp
            entry.relation = engine.relation
            entry.encoded = engine.relation.encode()
            entry.cache.rebase(entry.encoded)
            entry.retired_from.append(old_fp)
            entry.n_appended_batches += 1
            entry.fingerprint = new_fp
            del self._entries[old_fp]
            existing = self._entries.get(new_fp)
            if existing is not None and existing is not entry:
                # another tenant already registered the mutated content;
                # keep theirs resident, fold ours away
                entry.close()
                self._forwards[old_fp] = new_fp
                self._sync_gauges()
                return new_fp
            self._entries[new_fp] = entry
            self._forwards[old_fp] = new_fp
            self._touch(entry)
            # deltas change resident bytes just like registrations do —
            # re-check the budget so an always-appending tenant cannot
            # outgrow --catalog-bytes unnoticed
            self._evict_over_budget(keep=new_fp)
            self._sync_gauges()
            return new_fp

    #: backwards-compatible alias — appends are just insert-only deltas
    rekey_after_append = rekey_after_delta

    def add_forward(self, old_fp: str, new_fp: str) -> None:
        """Record that ``old_fp`` named an earlier snapshot of the
        entry now keyed ``new_fp`` (boot-time delta replay restores the
        forwarding trail a crashed service had built live)."""
        with self._lock:
            if old_fp != new_fp and old_fp not in self._entries:
                self._forwards[old_fp] = new_fp

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def pin(self, entry: CatalogEntry) -> None:
        """Shield an entry from eviction while a job uses it (the
        scheduler pins around every job; eviction runs on HTTP
        handler threads and must never close an engine mid-job)."""
        with self._lock:
            entry.pins += 1

    def unpin(self, entry: CatalogEntry) -> None:
        with self._lock:
            entry.pins = max(0, entry.pins - 1)

    def _touch(self, entry: CatalogEntry) -> None:
        entry.last_used_at = time.time()
        self._use_counter += 1
        entry.recency = self._use_counter

    def _evict_over_budget(self, keep: str) -> None:
        """Evict least-recently-used entries until under budget.
        ``keep`` (the entry just registered/touched) and pinned
        entries (a job mid-flight) are never evicted, so one
        oversized relation still registers and eviction never tears
        engines out from under the runner thread."""
        if self._max_resident_bytes is None:
            return
        while (sum(e.resident_bytes for e in self._entries.values())
               > self._max_resident_bytes and len(self._entries) > 1):
            victim = min(
                (e for e in self._entries.values()
                 if e.fingerprint != keep and e.pins == 0),
                key=lambda e: e.recency, default=None)
            if victim is None:
                return
            victim.close()
            del self._entries[victim.fingerprint]
            # retire forwards that point at the evicted entry — a
            # later lookup should 404 rather than chase a dead key
            self._forwards = {old: new for old, new
                              in self._forwards.items()
                              if new != victim.fingerprint}
            self.evictions += 1
            _EVICTIONS.inc()

    def _sync_gauges(self) -> None:
        """Mirror residency into the registry gauges (under the lock)."""
        _ENTRIES.set(float(len(self._entries)))
        _RESIDENT_BYTES.set(float(
            sum(e.resident_bytes for e in self._entries.values())))

    def close(self) -> None:
        """Close every entry's incremental engine."""
        with self._lock:
            for entry in self._entries.values():
                entry.close()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "resident_bytes": sum(
                    e.resident_bytes for e in self._entries.values()),
                "max_resident_bytes": self._max_resident_bytes,
                "evictions": self.evictions,
                "forwards": len(self._forwards),
            }


__all__ = [
    "CatalogEntry",
    "CatalogError",
    "DatasetCatalog",
    "UnknownFingerprintError",
]
