"""A thin typed client for the OD profiling service.

Stdlib :mod:`urllib.request` only — the client mirrors the HTTP API
one method per route, decodes JSON, and raises
:class:`ServiceClientError` (with the server's error message and
status) for non-2xx responses.  It is what the smoke suite, the
benchmark's concurrent clients, and the tests drive; applications can
use it directly or treat it as reference code for their own stack.

>>> client = ServiceClient("http://127.0.0.1:8765")   # doctest: +SKIP
>>> fp = client.register_dataset("flight", n_rows=1000)["fingerprint"]
...                                                   # doctest: +SKIP
>>> client.discover(fp)["result"]["n_fds"]            # doctest: +SKIP
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ReproError

#: Default connection-failure retry budget: a restarting server (crash
#: recovery, deploy) refuses connections for a moment; a few jittered
#: retries bridge the gap without hammering it.
RETRY_ATTEMPTS = 3
RETRY_BACKOFF_SECONDS = 0.1


def _retryable_reason(error: BaseException) -> bool:
    """True for connection-refused/reset shapes — the transient ones a
    bounded retry can bridge.  HTTP errors and timeouts are not
    retried: the former are answers, the latter already waited."""
    if isinstance(error, (ConnectionRefusedError, ConnectionResetError)):
        return True
    reason = getattr(error, "reason", None)
    return isinstance(reason,
                      (ConnectionRefusedError, ConnectionResetError))


class ServiceClientError(ReproError):
    """A non-2xx response; carries the HTTP status code."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://host:8765")``.

    ``timeout`` is the per-request socket timeout (every request
    method also takes a per-call ``timeout=`` override); blocking
    calls (``wait=True``) are bounded server-side by ``wait_seconds``.
    ``retries`` bounds the connection-refused/reset retry loop
    (``0`` disables it); backoff doubles per attempt with jitter.
    """

    def __init__(self, base_url: str, timeout: float = 630.0,
                 retries: int = RETRY_ATTEMPTS,
                 retry_backoff: float = RETRY_BACKOFF_SECONDS):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_backoff = retry_backoff

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None,
                 timeout: Optional[float] = None) -> Dict:
        data = (None if body is None
                else json.dumps(body).encode("utf-8"))
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        effective = self.timeout if timeout is None else timeout
        attempt = 0
        while True:
            try:
                with urllib.request.urlopen(
                        request, timeout=effective) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as error:
                detail = ""
                try:
                    payload = json.loads(error.read().decode("utf-8"))
                    detail = payload.get("error", "")
                except (ValueError, OSError):
                    pass
                raise ServiceClientError(
                    f"{method} {path} -> {error.code}"
                    + (f": {detail}" if detail else ""),
                    status=error.code) from None
            except (urllib.error.URLError,
                    ConnectionResetError) as error:
                if (_retryable_reason(error)
                        and attempt < self.retries):
                    backoff = self.retry_backoff * (2 ** attempt)
                    time.sleep(backoff
                               + random.uniform(0, backoff))
                    attempt += 1
                    continue
                reason = getattr(error, "reason", error)
                raise ServiceClientError(
                    f"{method} {path} failed: {reason}") from None

    def _get(self, path: str,
             timeout: Optional[float] = None) -> Dict:
        return self._request("GET", path, timeout=timeout)

    def _get_text(self, path: str,
                  timeout: Optional[float] = None) -> str:
        """GET a non-JSON route (``/metrics`` is Prometheus text)."""
        request = urllib.request.Request(self.base_url + path,
                                         method="GET")
        effective = self.timeout if timeout is None else timeout
        try:
            with urllib.request.urlopen(
                    request, timeout=effective) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceClientError(
                f"GET {path} -> {error.code}",
                status=error.code) from None
        except (urllib.error.URLError, ConnectionResetError) as error:
            reason = getattr(error, "reason", error)
            raise ServiceClientError(
                f"GET {path} failed: {reason}") from None

    def _post(self, path: str, body: Dict,
              timeout: Optional[float] = None) -> Dict:
        return self._request("POST", path, body, timeout=timeout)

    # ------------------------------------------------------------------
    # service surface
    # ------------------------------------------------------------------
    def health(self, timeout: Optional[float] = None) -> Dict:
        return self._get("/health", timeout=timeout)

    def metrics(self, timeout: Optional[float] = None) -> str:
        """The raw Prometheus text exposition (``GET /metrics``)."""
        return self._get_text("/metrics", timeout=timeout)

    def stats(self, timeout: Optional[float] = None) -> Dict:
        """The JSON observability snapshot (``GET /stats``)."""
        return self._get("/stats", timeout=timeout)

    def trace(self, job_id: str,
              timeout: Optional[float] = None) -> Dict:
        """One job's span timeline (``GET /jobs/{id}/trace``)."""
        return self._get(f"/jobs/{job_id}/trace", timeout=timeout)

    def profile(self, job_id: str,
                timeout: Optional[float] = None) -> str:
        """One job's collapsed flamegraph text
        (``GET /jobs/{id}/profile``); empty when the job ran with
        observability disabled."""
        return self._get_text(f"/jobs/{job_id}/profile",
                              timeout=timeout)

    def datasets(self, timeout: Optional[float] = None) -> List[Dict]:
        return self._get("/datasets", timeout=timeout)["datasets"]

    def dataset(self, fingerprint: str,
                timeout: Optional[float] = None) -> Dict:
        return self._get(f"/datasets/{fingerprint}", timeout=timeout)

    def register_csv(self, csv: Union[str, Path],
                     name: Optional[str] = None,
                     timeout: Optional[float] = None) -> Dict:
        """Register CSV content; a :class:`~pathlib.Path` is read
        first, a plain string is taken as the file's text."""
        if isinstance(csv, Path):
            csv = csv.read_text(encoding="utf-8")
        return self._post("/datasets", {"csv": csv, "name": name},
                          timeout=timeout)

    def register_rows(self, columns: List[str], rows: List[List],
                      name: Optional[str] = None,
                      timeout: Optional[float] = None) -> Dict:
        return self._post("/datasets", {"columns": columns,
                                        "rows": rows, "name": name},
                          timeout=timeout)

    def register_dataset(self, family: str, n_rows: int = 1000,
                         n_attrs: int = 10, seed: int = 42,
                         name: Optional[str] = None,
                         timeout: Optional[float] = None) -> Dict:
        """Register one of the server's synthetic dataset families."""
        return self._post("/datasets", {
            "dataset": family, "n_rows": n_rows, "n_attrs": n_attrs,
            "seed": seed, "name": name}, timeout=timeout)

    # -- jobs ----------------------------------------------------------
    def submit(self, kind: str, fingerprint: str, wait: bool = False,
               timeout: Optional[float] = None, **params) -> Dict:
        body = {"kind": kind, "fingerprint": fingerprint,
                "wait": wait, **params}
        return self._post("/jobs", body, timeout=timeout)

    def discover(self, fingerprint: str,
                 config: Optional[Dict] = None, wait: bool = True,
                 **params) -> Dict:
        """Run (or fetch the cached) discovery for one dataset."""
        if config is not None:
            params["config"] = config
        return self.submit("discover", fingerprint, wait=wait, **params)

    def validate(self, fingerprint: str, dependency: str,
                 wait: bool = True, **params) -> Dict:
        return self.submit("validate", fingerprint, wait=wait,
                           dependency=dependency, **params)

    def violations(self, fingerprint: str, dependency: str,
                   witnesses: int = 5, wait: bool = True,
                   **params) -> Dict:
        return self.submit("violations", fingerprint, wait=wait,
                           dependency=dependency, witnesses=witnesses,
                           **params)

    def append(self, fingerprint: str, rows: List[List],
               wait: bool = True, timeout: Optional[float] = None,
               **params) -> Dict:
        """Append rows to a registered dataset; the response carries
        the grown content's new fingerprint."""
        return self._post(f"/datasets/{fingerprint}/append",
                          {"rows": rows, "wait": wait, **params},
                          timeout=timeout)

    def delta(self, fingerprint: str,
              ops: Optional[List[List]] = None,
              inserts: Optional[List[List]] = None,
              deletes: Optional[List[List]] = None,
              updates: Optional[List[List]] = None,
              wait: bool = True, timeout: Optional[float] = None,
              **params) -> Dict:
        """Apply a weighted delta (inserts/deletes/updates) to a
        registered dataset.

        ``ops`` is an explicit ``[[weight, row], ...]`` list (weights
        ``+1``/``-1``); the convenience lists fold in as deletes,
        then updates (``[[old_row, new_row], ...]``), then inserts.
        The response carries the mutated content's new fingerprint
        and the WAL record's ``lsn`` when the server journals.
        """
        body: Dict[str, object] = {"wait": wait, **params}
        for key, value in (("ops", ops), ("inserts", inserts),
                           ("deletes", deletes), ("updates", updates)):
            if value is not None:
                body[key] = value
        return self._post(f"/datasets/{fingerprint}/delta", body,
                          timeout=timeout)

    def jobs(self, timeout: Optional[float] = None) -> List[Dict]:
        return self._get("/jobs", timeout=timeout)["jobs"]

    def job(self, job_id: str,
            timeout: Optional[float] = None) -> Dict:
        return self._get(f"/jobs/{job_id}", timeout=timeout)

    def cancel(self, job_id: str,
               timeout: Optional[float] = None) -> Dict:
        return self._request("DELETE", f"/jobs/{job_id}",
                             timeout=timeout)

    def poll(self, job_id: str, interval: float = 0.05,
             timeout: float = 60.0) -> Dict:
        """Poll a job until it reaches a terminal state (including
        ``crashed``, assigned during the server's journal recovery)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed", "cancelled",
                                 "crashed"):
                return job
            if time.monotonic() > deadline:
                raise ServiceClientError(
                    f"job {job_id} still {job['status']} after "
                    f"{timeout}s")
            time.sleep(interval)

    # -- results -------------------------------------------------------
    def results(self, fingerprint: Optional[str] = None,
                timeout: Optional[float] = None) -> List[Dict]:
        path = ("/results" if fingerprint is None
                else f"/results/{fingerprint}")
        return self._get(path, timeout=timeout)["results"]


__all__ = ["RETRY_ATTEMPTS", "RETRY_BACKOFF_SECONDS",
           "ServiceClient", "ServiceClientError"]
