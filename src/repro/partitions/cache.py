"""A memoizing partition store keyed by attribute-set bitmask.

FASTOD manages partitions level-by-level itself; this cache serves the
other consumers — validators, the brute-force oracle, the optimizer and
the violation detector — that need Π*_X for ad-hoc attribute sets.

Two retention modes:

* **Unbounded** (default, ``max_entries=None``): every partition ever
  computed stays resident — the historical behavior, right for sweeps
  that revisit every mask.
* **LRU** (``max_entries=k``): at most ``k`` composite partitions stay
  resident; the least recently used is evicted first.  Single-attribute
  partitions and Π over the empty set are pinned — they are the
  building blocks every derivation chain ends in, and re-deriving a
  evicted composite only costs products against pinned entries.

Both modes count hits and misses (:attr:`hits` / :attr:`misses` /
:meth:`stats`) so consumers can see whether their access pattern
amortizes.  Counters tick once per :meth:`PartitionCache.get` call;
the internal sub-mask derivations a miss triggers are not billed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Optional

from repro.obs import metrics
from repro.partitions.partition import StrippedPartition
from repro.relation.encoding import EncodedRelation
from repro.relation.schema import mask_of_indices

_LOOKUPS = metrics.counter(
    "repro_partition_cache_lookups_total",
    "Consumer-level partition cache lookups, by outcome",
    ("outcome",))
_EVICTIONS = metrics.counter(
    "repro_partition_cache_evictions_total",
    "Composite partitions evicted from LRU-bounded caches")


class PartitionCache:
    """Lazily computes and memoizes stripped partitions per bitmask.

    Partitions for composite sets are derived by refining the partition
    of the set minus its lowest attribute with that attribute's
    single-column partition, so each mask costs one linear product.
    """

    def __init__(self, relation: EncodedRelation,
                 max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be a positive integer")
        self._relation = relation
        self._max_entries = max_entries
        # pinned entries: the empty mask now, singleton masks on demand
        self._pinned: Dict[int, StrippedPartition] = {
            0: StrippedPartition.single_class(relation.n_rows)
        }
        # composite entries, in least-recently-used-first order
        self._store: "OrderedDict[int, StrippedPartition]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def relation(self) -> EncodedRelation:
        return self._relation

    @property
    def n_rows(self) -> int:
        return self._relation.n_rows

    @property
    def max_entries(self) -> Optional[int]:
        """Composite-partition capacity (``None`` = unbounded)."""
        return self._max_entries

    def get(self, mask: int) -> StrippedPartition:
        """Return Π*_X for the attribute-set bitmask ``mask``.

        Hit/miss counters are incremented here only — one tick per
        consumer lookup — never inside the recursive derivation, so
        ``stats()`` reflects the caller's access pattern rather than
        internal sub-mask traffic.
        """
        found = self._lookup(mask, touch=True)
        if found is not None:
            self.hits += 1
            _LOOKUPS.inc(outcome="hit")
            return found
        self.misses += 1
        _LOOKUPS.inc(outcome="miss")
        return self._materialize(mask)

    def _lookup(self, mask: int,
                touch: bool) -> Optional[StrippedPartition]:
        """Resident partition for ``mask``, or ``None``.

        ``touch`` refreshes LRU recency — true only for consumer-level
        lookups; internal derivation reuse must not promote scaffolding
        masks over the consumer's hot entries."""
        found = self._pinned.get(mask)
        if found is not None:
            return found
        found = self._store.get(mask)
        if found is not None and touch and self._max_entries is not None:
            self._store.move_to_end(mask)
        return found

    def _materialize(self, mask: int,
                     requested: bool = True) -> StrippedPartition:
        """Compute and store Π*_X, deriving absent sub-masks
        recursively (uncounted).

        In LRU mode, derivation scaffolding must not displace the
        consumer's hot working set: intermediate sub-masks are only
        stored while there is spare capacity (at the cold end, so they
        evict first), and looking one up does not refresh its recency.
        Only the mask the consumer actually asked for earns fresh
        recency, and only its insertion may evict.
        """
        found = self._lookup(mask, touch=requested)
        if found is not None:
            return found
        low = mask & -mask
        if mask == low:
            partition = StrippedPartition.for_attribute(
                self._relation, low.bit_length() - 1)
            self._pinned[mask] = partition
            return partition
        partition = self._materialize(mask ^ low, requested=False).product(
            self._materialize(low, requested=False))
        if self._max_entries is None or requested:
            self._store[mask] = partition
            if (self._max_entries is not None
                    and len(self._store) > self._max_entries):
                self._store.popitem(last=False)
                self.evictions += 1
                _EVICTIONS.inc()
        elif len(self._store) < self._max_entries:
            self._store[mask] = partition
            self._store.move_to_end(mask, last=False)
        return partition

    def peek(self, mask: int) -> Optional[StrippedPartition]:
        """Resident partition for ``mask`` or ``None`` — never derives.

        Counts a hit or miss and refreshes LRU recency like
        :meth:`get`, but leaves materialization to the caller (used by
        consumers that have a cheaper way to build a missing partition
        than the cache's product chain, e.g. FASTOD's level-wise
        parent products)."""
        found = self._lookup(mask, touch=True)
        if found is not None:
            self.hits += 1
            _LOOKUPS.inc(outcome="hit")
        else:
            self.misses += 1
            _LOOKUPS.inc(outcome="miss")
        return found

    def put(self, mask: int, partition: StrippedPartition) -> None:
        """Adopt an externally computed partition for ``mask``.

        Single-attribute and empty-set partitions are pinned like their
        derived counterparts; composites enter at the hot end of the
        LRU order and may evict."""
        if partition.n_rows != self._relation.n_rows:
            raise ValueError(
                f"partition covers {partition.n_rows} rows but the "
                f"relation has {self._relation.n_rows}")
        if mask == 0 or mask & (mask - 1) == 0:
            self._pinned[mask] = partition
            return
        self._store[mask] = partition
        if self._max_entries is not None:
            self._store.move_to_end(mask)
            if len(self._store) > self._max_entries:
                self._store.popitem(last=False)
                self.evictions += 1
                _EVICTIONS.inc()

    def invalidate(self, masks: Optional[Iterable[int]] = None) -> None:
        """Drop cached partitions (all of them by default).

        The append path's cache hook: once the underlying relation
        gains rows, every resident partition is stale.  Passing
        ``masks`` drops only those (ignoring absent ones) for callers
        that maintain the rest through delta kernels.  Hit/miss
        counters are preserved; invalidations are not billed as
        evictions."""
        if masks is None:
            self._pinned = {
                0: StrippedPartition.single_class(self._relation.n_rows)
            }
            self._store.clear()
            return
        for mask in masks:
            if mask == 0:
                self._pinned[0] = StrippedPartition.single_class(
                    self._relation.n_rows)
            else:
                self._pinned.pop(mask, None)
                self._store.pop(mask, None)

    def rebase(self, relation: EncodedRelation) -> None:
        """Point the cache at a grown relation, dropping stale entries.

        The coarse-grained invalidation hook for consumers that hold a
        long-lived cache across appends (e.g. a detector re-checking
        rules after each batch): swap in the re-encoded relation and
        start partitions fresh, keeping the hit/miss history."""
        self._relation = relation
        self.invalidate()

    def get_attrs(self, attributes: Iterable[int]) -> StrippedPartition:
        """Convenience overload taking attribute indices."""
        return self.get(mask_of_indices(attributes))

    def preload_singletons(self) -> None:
        """Eagerly compute all single-attribute partitions."""
        for attribute in range(self._relation.arity):
            self.get(1 << attribute)

    def stats(self) -> Dict[str, object]:
        """Hit/miss/eviction counters and current residency."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "resident": len(self),
            "max_entries": self._max_entries,
        }

    def __len__(self) -> int:
        return len(self._pinned) + len(self._store)
