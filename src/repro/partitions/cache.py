"""A memoizing partition store keyed by attribute-set bitmask.

FASTOD manages partitions level-by-level itself; this cache serves the
other consumers — validators, the brute-force oracle, the optimizer and
the violation detector — that need Π*_X for ad-hoc attribute sets.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.partitions.partition import StrippedPartition
from repro.relation.encoding import EncodedRelation
from repro.relation.schema import mask_of_indices


class PartitionCache:
    """Lazily computes and memoizes stripped partitions per bitmask.

    Partitions for composite sets are derived by refining the partition
    of the set minus its lowest attribute with that attribute's
    single-column partition, so each mask costs one linear product.
    """

    def __init__(self, relation: EncodedRelation):
        self._relation = relation
        self._store: Dict[int, StrippedPartition] = {
            0: StrippedPartition.single_class(relation.n_rows)
        }

    @property
    def relation(self) -> EncodedRelation:
        return self._relation

    @property
    def n_rows(self) -> int:
        return self._relation.n_rows

    def get(self, mask: int) -> StrippedPartition:
        """Return Π*_X for the attribute-set bitmask ``mask``."""
        found = self._store.get(mask)
        if found is not None:
            return found
        low = mask & -mask
        if mask == low:
            partition = StrippedPartition.for_attribute(
                self._relation, low.bit_length() - 1)
        else:
            partition = self.get(mask ^ low).product(self.get(low))
        self._store[mask] = partition
        return partition

    def get_attrs(self, attributes: Iterable[int]) -> StrippedPartition:
        """Convenience overload taking attribute indices."""
        return self.get(mask_of_indices(attributes))

    def preload_singletons(self) -> None:
        """Eagerly compute all single-attribute partitions."""
        for attribute in range(self._relation.arity):
            self.get(1 << attribute)

    def __len__(self) -> int:
        return len(self._store)
