"""Sorted partitions (τ) and the bucketization of Table 2.

A sorted partition τ_A is the list of equivalence classes of attribute
``A`` ordered by A's values (paper Section 4.6).  Restricting τ_A to one
equivalence class of a context partition — ``τ_A(E(t_X))`` in the paper,
illustrated in Table 2 — produces the sorted buckets the swap check
scans.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.relation.encoding import EncodedRelation


class SortedPartition:
    """Equivalence classes of one attribute in ascending value order.

    Unlike :class:`~repro.partitions.partition.StrippedPartition`,
    singleton classes are kept: ordering information matters here.
    With dense rank encoding, bucket ``i`` holds exactly the rows whose
    rank equals ``i``.
    """

    __slots__ = ("buckets", "n_rows")

    def __init__(self, buckets: Sequence[Sequence[int]], n_rows: int):
        self.buckets: List[List[int]] = [list(b) for b in buckets]
        self.n_rows = n_rows

    @classmethod
    def from_ranks(cls, ranks: np.ndarray) -> "SortedPartition":
        """Build τ from a dense-rank column in O(n)."""
        n_buckets = int(ranks.max()) + 1 if len(ranks) else 0
        buckets: List[List[int]] = [[] for _ in range(n_buckets)]
        for row, rank in enumerate(ranks):
            buckets[int(rank)].append(row)
        return cls(buckets, len(ranks))

    @classmethod
    def for_attribute(cls, relation: EncodedRelation,
                      attribute: int) -> "SortedPartition":
        return cls.from_ranks(relation.column(attribute))

    @property
    def n_buckets(self) -> int:
        return len(self.buckets)

    def rank_of(self) -> np.ndarray:
        """Inverse map: row -> bucket index (== dense rank)."""
        ranks = np.empty(self.n_rows, dtype=np.int64)
        for bucket_index, rows in enumerate(self.buckets):
            ranks[rows] = bucket_index
        return ranks

    def restrict(self, eq_class: Sequence[int]) -> List[List[int]]:
        """``τ_A(E(t_X))``: the sorted buckets of one context class.

        Reproduces the hashing step of Table 2: each row of the class is
        hashed into the bucket of its A-rank; buckets come back in
        ascending A order with empty buckets dropped.
        """
        member: Dict[int, List[int]] = {}
        ranks = self.rank_of()
        for row in eq_class:
            member.setdefault(int(ranks[row]), []).append(row)
        return [member[rank] for rank in sorted(member)]


def swap_free_buckets(buckets_a: List[List[int]],
                      ranks_b: np.ndarray) -> bool:
    """Check that no swap exists between A and B over sorted A-buckets.

    ``buckets_a`` are the rows of one context class grouped by A value in
    ascending order (output of :meth:`SortedPartition.restrict`).  A swap
    (Definition 5) is a pair ``s, t`` with ``s ≺_A t`` but ``t ≺_B s``;
    bucket-wise this means some B-rank in an earlier bucket exceeds some
    B-rank in a later bucket.  One left-to-right scan suffices.
    """
    highest_b_so_far = -1
    for bucket in buckets_a:
        bucket_ranks = [int(ranks_b[row]) for row in bucket]
        if min(bucket_ranks) < highest_b_so_far:
            return False
        highest_b_so_far = max(highest_b_so_far, max(bucket_ranks))
    return True
