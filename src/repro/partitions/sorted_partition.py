"""Sorted partitions (τ) and the bucketization of Table 2.

A sorted partition τ_A is the list of equivalence classes of attribute
``A`` ordered by A's values (paper Section 4.6).  Restricting τ_A to one
equivalence class of a context partition — ``τ_A(E(t_X))`` in the paper,
illustrated in Table 2 — produces the sorted buckets the swap check
scans.

The rank column itself doubles as the inverse map (row -> bucket), so
:meth:`SortedPartition.rank_of` is memoized on the instance:
:meth:`restrict` used to rebuild it with a full O(n) pass per call,
which dominated repeated restrictions of the same τ.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.relation.encoding import EncodedRelation


class SortedPartition:
    """Equivalence classes of one attribute in ascending value order.

    Unlike :class:`~repro.partitions.partition.StrippedPartition`,
    singleton classes are kept: ordering information matters here.
    With dense rank encoding, bucket ``i`` holds exactly the rows whose
    rank equals ``i``.
    """

    __slots__ = ("buckets", "n_rows", "_ranks")

    def __init__(self, buckets: Sequence[Sequence[int]], n_rows: int):
        self.buckets: List[List[int]] = [list(b) for b in buckets]
        self.n_rows = n_rows
        self._ranks: Optional[np.ndarray] = None

    @classmethod
    def from_ranks(cls, ranks: np.ndarray) -> "SortedPartition":
        """Build τ from a dense-rank column in O(n log n).

        One stable argsort orders rows by rank; slicing at the rank
        boundaries yields the buckets with rows in original-position
        order, exactly as the per-row append loop produced them.
        """
        n = len(ranks)
        if n == 0:
            partition = cls([], 0)
            partition._ranks = np.array(ranks, dtype=np.int64)
            partition._ranks.setflags(write=False)
            return partition
        n_buckets = int(ranks.max()) + 1
        order = np.argsort(ranks, kind="stable")
        sorted_ranks = ranks[order]
        starts = np.searchsorted(sorted_ranks, np.arange(n_buckets))
        stops = np.append(starts[1:], n)
        flat = order.tolist()
        partition = cls.__new__(cls)
        partition.buckets = [flat[start:stop]
                             for start, stop in zip(starts, stops)]
        partition.n_rows = n
        # a frozen private copy, NOT an alias of the caller's column:
        # rank_of() hands this array out, and callers must not be able
        # to corrupt the relation's encoded column or this memo
        partition._ranks = np.array(ranks, dtype=np.int64)
        partition._ranks.setflags(write=False)
        return partition

    @classmethod
    def for_attribute(cls, relation: EncodedRelation,
                      attribute: int) -> "SortedPartition":
        return cls.from_ranks(relation.column(attribute))

    @property
    def n_buckets(self) -> int:
        return len(self.buckets)

    def rank_of(self) -> np.ndarray:
        """Inverse map: row -> bucket index (== dense rank).

        Memoized on the instance — when τ was built
        :meth:`from_ranks`, a copy of the input column *is* the inverse
        map; otherwise it is scattered once from the buckets and
        cached.  The returned array is read-only: the memo is shared
        across calls, so in-place writes (harmless under the old
        fresh-array-per-call contract) would corrupt every later
        :meth:`restrict`.
        """
        if self._ranks is None:
            ranks = np.empty(self.n_rows, dtype=np.int64)
            for bucket_index, rows in enumerate(self.buckets):
                ranks[rows] = bucket_index
            ranks.setflags(write=False)
            self._ranks = ranks
        return self._ranks

    def restrict(self, eq_class: Sequence[int]) -> List[List[int]]:
        """``τ_A(E(t_X))``: the sorted buckets of one context class.

        Reproduces the hashing step of Table 2: each row of the class is
        hashed into the bucket of its A-rank; buckets come back in
        ascending A order with empty buckets dropped.  Uses the
        memoized inverse map plus one small stable sort over the class,
        so the cost is O(|class| log |class|), not O(n) per call.
        """
        members = np.asarray(eq_class, dtype=np.int64)
        if members.size == 0:
            return []
        ranks = self.rank_of()[members]
        order = np.argsort(ranks, kind="stable")
        sorted_members = members[order].tolist()
        sorted_ranks = ranks[order]
        boundaries = np.flatnonzero(np.diff(sorted_ranks)) + 1
        starts = [0, *boundaries.tolist()]
        stops = [*boundaries.tolist(), len(sorted_members)]
        return [sorted_members[start:stop]
                for start, stop in zip(starts, stops)]


def swap_free_buckets(buckets_a: List[List[int]],
                      ranks_b: np.ndarray) -> bool:
    """Check that no swap exists between A and B over sorted A-buckets.

    ``buckets_a`` are the rows of one context class grouped by A value in
    ascending order (output of :meth:`SortedPartition.restrict`).  A swap
    (Definition 5) is a pair ``s, t`` with ``s ≺_A t`` but ``t ≺_B s``;
    bucket-wise this means some B-rank in an earlier bucket exceeds some
    B-rank in a later bucket.  One left-to-right scan suffices.
    """
    highest_b_so_far = -1
    for bucket in buckets_a:
        bucket_ranks = ranks_b[bucket]
        if int(bucket_ranks.min()) < highest_b_so_far:
            return False
        highest_b_so_far = max(highest_b_so_far, int(bucket_ranks.max()))
    return True
