"""Partition machinery: stripped partitions, products, sorted partitions.

Stripped partitions use a flat CSR-style NumPy layout
(``rows``/``offsets``) — see :mod:`repro.partitions.partition` for the
design notes and complexity bounds of the vectorized kernels built on
top of it.
"""

from repro.partitions.cache import PartitionCache
from repro.partitions.partition import (
    StrippedPartition,
    partition_from_columns,
    value_group_sizes,
)
from repro.partitions.sorted_partition import (
    SortedPartition,
    swap_free_buckets,
)

__all__ = [
    "PartitionCache",
    "SortedPartition",
    "StrippedPartition",
    "partition_from_columns",
    "swap_free_buckets",
    "value_group_sizes",
]
