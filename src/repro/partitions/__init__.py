"""Partition machinery: stripped partitions, products, sorted partitions."""

from repro.partitions.cache import PartitionCache
from repro.partitions.partition import (
    StrippedPartition,
    partition_from_columns,
)
from repro.partitions.sorted_partition import (
    SortedPartition,
    swap_free_buckets,
)

__all__ = [
    "PartitionCache",
    "SortedPartition",
    "StrippedPartition",
    "partition_from_columns",
    "swap_free_buckets",
]
