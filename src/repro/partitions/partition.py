"""Stripped partitions (Π*) over attribute sets.

A partition Π_X groups tuples into equivalence classes by their values
on the attribute set X.  A *stripped* partition (paper Section 4.6,
Example 12) drops singleton classes — they can never falsify a
canonical OD (Lemma 14) — which keeps both memory and validation time
proportional to the number of "interesting" tuples.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.relation.encoding import EncodedRelation


class StrippedPartition:
    """Equivalence classes of size >= 2 over some attribute set.

    ``classes`` is a list of row-index lists.  ``n_rows`` is the size of
    the underlying relation (needed because stripped classes alone do
    not reveal it).
    """

    __slots__ = ("classes", "n_rows", "_row_to_class")

    def __init__(self, classes: Sequence[Sequence[int]], n_rows: int):
        self.classes: List[List[int]] = [list(c) for c in classes]
        self.n_rows = n_rows
        self._row_to_class: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_ranks(cls, ranks: np.ndarray) -> "StrippedPartition":
        """Partition by a single rank-encoded column in O(n log n)."""
        n = len(ranks)
        order = np.argsort(ranks, kind="stable")
        sorted_ranks = ranks[order]
        classes: List[List[int]] = []
        start = 0
        for stop in range(1, n + 1):
            if stop == n or sorted_ranks[stop] != sorted_ranks[start]:
                if stop - start >= 2:
                    classes.append([int(r) for r in order[start:stop]])
                start = stop
        return cls(classes, n)

    @classmethod
    def single_class(cls, n_rows: int) -> "StrippedPartition":
        """Π over the empty attribute set: every tuple is equivalent."""
        if n_rows < 2:
            return cls([], n_rows)
        return cls([list(range(n_rows))], n_rows)

    @classmethod
    def for_attribute(cls, relation: EncodedRelation,
                      attribute: int) -> "StrippedPartition":
        """Partition of a relation by one attribute index."""
        return cls.from_ranks(relation.column(attribute))

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    @property
    def n_classes(self) -> int:
        """Number of non-singleton classes, ``|Π*_X|``."""
        return len(self.classes)

    @property
    def n_grouped_rows(self) -> int:
        """``||Π*_X||`` — total rows living in non-singleton classes."""
        return sum(len(c) for c in self.classes)

    @property
    def error(self) -> int:
        """TANE's e(X) numerator: rows that would have to be removed so
        that X becomes a superkey (``||Π*|| - |Π*||``)."""
        return self.n_grouped_rows - self.n_classes

    def is_superkey(self) -> bool:
        """True when no two tuples agree on the attribute set (Π* empty).

        Triggers the key-pruning optimizations of Lemmas 12-13.
        """
        return not self.classes

    # ------------------------------------------------------------------
    # refinement
    # ------------------------------------------------------------------
    def row_to_class(self) -> np.ndarray:
        """Map row -> class id (or -1 for rows in singleton classes).

        Cached; used as the probe side of :meth:`product`.
        """
        if self._row_to_class is None:
            table = np.full(self.n_rows, -1, dtype=np.int64)
            for class_id, rows in enumerate(self.classes):
                table[rows] = class_id
            self._row_to_class = table
        return self._row_to_class

    def product(self, other: "StrippedPartition") -> "StrippedPartition":
        """Π_X · Π_Y = Π_{X∪Y}, in time linear in ``||Π*_Y||``.

        This is the TANE-style refinement the paper relies on to compute
        level ``l`` partitions from two level ``l-1`` parents
        (Section 4.6).
        """
        if self.n_rows != other.n_rows:
            raise ValueError("partitions cover different relations")
        probe = self.row_to_class()
        classes: List[List[int]] = []
        for rows in other.classes:
            groups: dict = {}
            for row in rows:
                left_class = probe[row]
                if left_class >= 0:
                    groups.setdefault(int(left_class), []).append(row)
            for grouped in groups.values():
                if len(grouped) >= 2:
                    classes.append(grouped)
        return StrippedPartition(classes, self.n_rows)

    # ------------------------------------------------------------------
    # expansion / comparison helpers (mostly for tests and display)
    # ------------------------------------------------------------------
    def with_singletons(self) -> List[List[int]]:
        """The full (non-stripped) partition, singletons included,
        ordered with stripped classes first then singleton rows."""
        seen = np.zeros(self.n_rows, dtype=bool)
        full = [list(c) for c in self.classes]
        for rows in self.classes:
            seen[rows] = True
        full.extend([int(i)] for i in np.flatnonzero(~seen))
        return full

    def canonical_form(self) -> frozenset:
        """A hashable, order-insensitive rendering for equality tests."""
        return frozenset(frozenset(c) for c in self.classes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StrippedPartition):
            return (self.n_rows == other.n_rows
                    and self.canonical_form() == other.canonical_form())
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed
        return hash((self.n_rows, self.canonical_form()))

    def __repr__(self) -> str:
        return (f"StrippedPartition(classes={self.classes!r}, "
                f"n_rows={self.n_rows})")


def partition_from_columns(relation: EncodedRelation,
                           attributes: Iterable[int]) -> StrippedPartition:
    """Compute Π*_X from scratch by hashing whole projections.

    Used as the slow-but-obviously-correct reference implementation in
    property tests against :meth:`StrippedPartition.product`.
    """
    attributes = list(attributes)
    if not attributes:
        return StrippedPartition.single_class(relation.n_rows)
    groups: dict = {}
    columns = [relation.column(a) for a in attributes]
    for row in range(relation.n_rows):
        key = tuple(int(col[row]) for col in columns)
        groups.setdefault(key, []).append(row)
    classes = [rows for rows in groups.values() if len(rows) >= 2]
    return StrippedPartition(classes, relation.n_rows)
