"""Stripped partitions (Π*) over attribute sets — flat NumPy layout.

A partition Π_X groups tuples into equivalence classes by their values
on the attribute set X.  A *stripped* partition (paper Section 4.6,
Example 12) drops singleton classes — they can never falsify a
canonical OD (Lemma 14) — which keeps both memory and validation time
proportional to the number of "interesting" tuples.

Representation
--------------
Classes are stored *stripped and flat*: one contiguous ``int64`` array
``rows`` holding every grouped row, class after class, plus an
``offsets`` array of length ``n_classes + 1`` so that class ``i`` is
``rows[offsets[i]:offsets[i + 1]]``.  The layout is the CSR-style
encoding used throughout NumPy-backed group-by engines and buys:

* O(1) measures — ``n_classes``, ``||Π*||`` and the TANE error
  ``e(X)`` read straight off array lengths;
* vectorized construction — :meth:`from_ranks` is one ``argsort`` plus
  one boundary scan (``np.diff``/``np.flatnonzero``), O(n log n) with
  no Python-level per-row work;
* vectorized refinement — :meth:`product` builds composite
  ``(other-class, self-class)`` keys for the grouped rows and resolves
  them with a single sort, instead of per-row dict inserts;
* segmented validation — the split/swap kernels in
  :mod:`repro.core.validation` reduce over ``rows``/``offsets``
  directly with ``np.maximum.accumulate``-style prefix scans.

The legacy ``classes`` list-of-lists view is kept as a lazily
materialized property so existing consumers (violation counting,
extensions, tests) keep working unchanged; hot paths should prefer
``rows``/``offsets``/``class_sizes``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro import kernels
from repro.kernels.reference import strip_sorted_runs as _strip_sorted_runs
from repro.kernels.thresholds import REFERENCE_SCALAR_THRESHOLD
from repro.relation.encoding import EncodedRelation

#: Shared sentinels aliased into every empty partition; frozen so an
#: in-place write through one partition's ``rows``/``offsets`` cannot
#: corrupt every other empty partition process-wide.
_EMPTY_ROWS = np.empty(0, dtype=np.int64)
_EMPTY_ROWS.setflags(write=False)
_ZERO_OFFSET = np.zeros(1, dtype=np.int64)
_ZERO_OFFSET.setflags(write=False)

#: Below this many grouped rows the vectorized kernels fall back to
#: scalar scans — fixed NumPy dispatch overhead (~a dozen ufunc calls)
#: beats the per-row work on the tiny classes deep lattice levels
#: produce.  The canonical value lives in
#: :mod:`repro.kernels.thresholds`; this module global remains the
#: call-time gate tests retune by monkeypatching, and while it holds
#: the stock value the active kernel backend's own (measured) crossover
#: applies instead — the compiled kernels pay far less per call (see
#: :func:`repro.kernels.effective_scalar_threshold`).
SMALL_KERNEL_THRESHOLD = REFERENCE_SCALAR_THRESHOLD


class StrippedPartition:
    """Equivalence classes of size >= 2 over some attribute set.

    ``rows`` is the flat ``int64`` array of all grouped row indices and
    ``offsets`` its class-boundary array (``offsets[0] == 0``,
    ``offsets[-1] == len(rows)``); class ``i`` lives at
    ``rows[offsets[i]:offsets[i + 1]]``.  ``n_rows`` is the size of the
    underlying relation (needed because stripped classes alone do not
    reveal it).
    """

    __slots__ = ("rows", "offsets", "n_rows", "_row_to_class", "_classes",
                 "_class_ids", "_shm_ref")

    def __init__(self, classes: Sequence[Sequence[int]], n_rows: int):
        if classes:
            sizes = np.fromiter((len(c) for c in classes), dtype=np.int64,
                                count=len(classes))
            self.rows = np.fromiter(
                (row for c in classes for row in c), dtype=np.int64,
                count=int(sizes.sum()))
            self.offsets = np.concatenate(
                (_ZERO_OFFSET, np.cumsum(sizes)))
        else:
            self.rows = _EMPTY_ROWS
            self.offsets = _ZERO_OFFSET
        self.n_rows = n_rows
        self._row_to_class: Optional[np.ndarray] = None
        self._classes: Optional[List[List[int]]] = None
        self._class_ids: Optional[np.ndarray] = None
        #: set by the parallel engine when a replica of this partition
        #: lives in a shared-memory block workers can read directly
        #: (see repro.parallel.pool); never consulted by serial code
        self._shm_ref = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_flat(cls, rows: np.ndarray, offsets: np.ndarray,
                  n_rows: int) -> "StrippedPartition":
        """Adopt (not copy) a prebuilt flat layout."""
        partition = cls.__new__(cls)
        partition.rows = rows
        partition.offsets = offsets
        partition.n_rows = n_rows
        partition._row_to_class = None
        partition._classes = None
        partition._class_ids = None
        partition._shm_ref = None
        return partition

    @classmethod
    def from_ranks(cls, ranks: np.ndarray) -> "StrippedPartition":
        """Partition by a single rank-encoded column in O(n log n).

        One stable ``argsort`` sorts rows by rank; boundaries fall
        where consecutive sorted ranks differ.  Runs of length >= 2
        between boundaries become the stripped classes.
        """
        n = len(ranks)
        if n == 0:
            return cls.from_flat(_EMPTY_ROWS, _ZERO_OFFSET, 0)
        order = np.argsort(ranks, kind="stable").astype(np.int64, copy=False)
        sorted_ranks = ranks[order]
        return cls.from_flat(
            *_strip_sorted_runs(order, sorted_ranks), n)

    @classmethod
    def single_class(cls, n_rows: int) -> "StrippedPartition":
        """Π over the empty attribute set: every tuple is equivalent."""
        if n_rows < 2:
            return cls.from_flat(_EMPTY_ROWS, _ZERO_OFFSET, n_rows)
        return cls.from_flat(
            np.arange(n_rows, dtype=np.int64),
            np.array([0, n_rows], dtype=np.int64), n_rows)

    @classmethod
    def for_attribute(cls, relation: EncodedRelation,
                      attribute: int) -> "StrippedPartition":
        """Partition of a relation by one attribute index."""
        return cls.from_ranks(relation.column(attribute))

    # ------------------------------------------------------------------
    # measures (all O(1) on the flat layout)
    # ------------------------------------------------------------------
    @property
    def classes(self) -> List[List[int]]:
        """Legacy list-of-lists view, materialized lazily and cached.

        Prefer ``rows``/``offsets`` in hot code; this exists for
        consumers that genuinely want Python lists (display, tests,
        per-class heuristics)."""
        if self._classes is None:
            bounds = self.offsets
            flat = self.rows.tolist()
            self._classes = [
                flat[bounds[i]:bounds[i + 1]]
                for i in range(len(bounds) - 1)]
        return self._classes

    @property
    def n_classes(self) -> int:
        """Number of non-singleton classes, ``|Π*_X|``."""
        return len(self.offsets) - 1

    @property
    def n_grouped_rows(self) -> int:
        """``||Π*_X||`` — total rows living in non-singleton classes."""
        return len(self.rows)

    @property
    def class_sizes(self) -> np.ndarray:
        """Per-class sizes, ``np.diff(offsets)``."""
        return np.diff(self.offsets)

    @property
    def error(self) -> int:
        """TANE's e(X) numerator: rows that would have to be removed so
        that X becomes a superkey (``||Π*|| - |Π*||``)."""
        return len(self.rows) - (len(self.offsets) - 1)

    def is_superkey(self) -> bool:
        """True when no two tuples agree on the attribute set (Π* empty).

        Triggers the key-pruning optimizations of Lemmas 12-13.
        """
        return len(self.rows) == 0

    # ------------------------------------------------------------------
    # refinement
    # ------------------------------------------------------------------
    def class_ids(self) -> np.ndarray:
        """Class id of each entry of ``rows`` (``np.repeat`` expansion).

        Cached; the expansion is reused by every vectorized kernel that
        segments the grouped rows by class."""
        if self._class_ids is None:
            self._class_ids = np.repeat(
                np.arange(self.n_classes, dtype=np.int64),
                self.class_sizes)
        return self._class_ids

    def row_to_class(self) -> np.ndarray:
        """Map row -> class id (or -1 for rows in singleton classes).

        Cached; used as the probe side of :meth:`product`.
        """
        if self._row_to_class is None:
            table = np.full(self.n_rows, -1, dtype=np.int64)
            table[self.rows] = self.class_ids()
            self._row_to_class = table
        return self._row_to_class

    def product(self, other: "StrippedPartition") -> "StrippedPartition":
        """Π_X · Π_Y = Π_{X∪Y}, vectorized over ``||Π*_Y||``.

        This is the TANE-style refinement the paper relies on to
        compute level ``l`` partitions from two level ``l-1`` parents
        (Section 4.6).  Each grouped row of ``other`` is tagged with the
        composite key ``(other-class, self-class)``; rows sharing a
        composite key form the refined classes.  One sort of the
        grouped rows (O(||Π*_Y|| log ||Π*_Y||)) replaces the per-row
        dict inserts of the list-based implementation.
        """
        if self.n_rows != other.n_rows:
            raise ValueError("partitions cover different relations")
        probe = self.row_to_class()
        if len(other.rows) <= kernels.effective_scalar_threshold(
                SMALL_KERNEL_THRESHOLD):
            return self._product_small(other, probe)
        rows, offsets = kernels.partition_product(
            probe, other.rows, other.offsets, other.class_ids(),
            self.n_classes)
        return StrippedPartition.from_flat(rows, offsets, self.n_rows)

    def _product_small(self, other: "StrippedPartition",
                       probe: np.ndarray) -> "StrippedPartition":
        """Dict-based refinement for partitions with few grouped rows,
        where fixed NumPy call overhead exceeds the per-row work."""
        offsets = other.offsets
        rows_y = other.rows.tolist()
        classes: List[List[int]] = []
        for index in range(len(offsets) - 1):
            groups: dict = {}
            for row in rows_y[offsets[index]:offsets[index + 1]]:
                left_class = probe[row]
                if left_class >= 0:
                    groups.setdefault(int(left_class), []).append(row)
            for grouped in groups.values():
                if len(grouped) >= 2:
                    classes.append(grouped)
        return StrippedPartition(classes, self.n_rows)

    # ------------------------------------------------------------------
    # expansion / comparison helpers (mostly for tests and display)
    # ------------------------------------------------------------------
    def with_singletons(self) -> List[List[int]]:
        """The full (non-stripped) partition, singletons included,
        ordered with stripped classes first then singleton rows."""
        seen = np.zeros(self.n_rows, dtype=bool)
        seen[self.rows] = True
        full = [list(c) for c in self.classes]
        full.extend([int(i)] for i in np.flatnonzero(~seen))
        return full

    def canonical_form(self) -> frozenset:
        """A hashable, order-insensitive rendering for equality tests."""
        return frozenset(frozenset(c) for c in self.classes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StrippedPartition):
            return (self.n_rows == other.n_rows
                    and self.canonical_form() == other.canonical_form())
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed
        return hash((self.n_rows, self.canonical_form()))

    def __repr__(self) -> str:
        return (f"StrippedPartition(classes={self.classes!r}, "
                f"n_rows={self.n_rows})")


def value_group_sizes(column: np.ndarray, partition: StrippedPartition):
    """Sizes of the ``(class, value)`` groups of the grouped rows.

    Returns ``(group_sizes, owning_class)``: parallel arrays with one
    entry per distinct value per class, grouped with a single
    ``lexsort`` over ``(class, value)``.  This is the segmented
    group-by underlying split-pair counting and g3 removal counts.
    A superkey partition (no grouped rows) yields two empty arrays.
    """
    if len(partition.rows) == 0:
        return _EMPTY_ROWS, _EMPTY_ROWS
    class_ids = partition.class_ids()
    values = column[partition.rows]
    order = np.lexsort((values, class_ids))
    sorted_classes = class_ids[order]
    sorted_values = values[order]
    new_group = np.empty(len(order), dtype=bool)
    new_group[0] = True
    new_group[1:] = ((sorted_classes[1:] != sorted_classes[:-1])
                     | (sorted_values[1:] != sorted_values[:-1]))
    group_sizes = np.bincount(np.cumsum(new_group) - 1)
    return group_sizes, sorted_classes[new_group]


def merge_batch(partition: StrippedPartition, n_rows: int,
                join_rows: np.ndarray, join_classes: np.ndarray,
                new_classes: Sequence[Sequence[int]]):
    """Merge an appended batch into the CSR rows/offsets layout.

    The delta-maintenance kernel for append-only workloads: instead of
    re-sorting the grown relation, splice the batch into the existing
    flat layout in one vectorized pass.

    ``join_rows``/``join_classes`` are parallel arrays of row indices
    landing in *existing* classes (the class ids refer to
    ``partition``); ``new_classes`` are whole new classes — batch rows
    grouping among themselves, or an old singleton promoted by batch
    rows that matched it — appended after the existing classes in the
    given order.  ``n_rows`` is the grown relation size.

    Returns ``(merged, grew)``: the merged partition and a boolean
    array over its classes flagging every class that gained rows
    (existing classes that were joined, plus all the new ones) — the
    classes incremental validation has to re-examine.

    Old class ids are preserved (class ``i`` of ``partition`` is class
    ``i`` of ``merged``), which is what lets per-class validation state
    keyed by class survive the merge.
    """
    old_sizes = partition.class_sizes
    n_old_classes = partition.n_classes
    join_rows = np.asarray(join_rows, dtype=np.int64)
    join_classes = np.asarray(join_classes, dtype=np.int64)
    counts = np.bincount(join_classes, minlength=n_old_classes) \
        if len(join_classes) else np.zeros(n_old_classes, dtype=np.int64)
    if len(counts) > n_old_classes:
        raise ValueError("join class id out of range")
    fresh_sizes = np.fromiter((len(c) for c in new_classes),
                              dtype=np.int64, count=len(new_classes))
    if (fresh_sizes < 2).any():
        raise ValueError("new classes must have at least 2 rows")

    sizes = np.concatenate((old_sizes + counts, fresh_sizes))
    offsets = np.concatenate((_ZERO_OFFSET, np.cumsum(sizes)))
    rows = np.empty(int(offsets[-1]), dtype=np.int64)

    # old rows keep their within-class position, shifted by the growth
    # of the classes before them
    if n_old_classes:
        shifts = offsets[:n_old_classes] - partition.offsets[:-1]
        positions = np.arange(len(partition.rows), dtype=np.int64)
        positions += np.repeat(shifts, old_sizes)
        rows[positions] = partition.rows
    # joining rows fill each class's tail: class start + old size +
    # rank among the class's joiners (first-occurrence arithmetic on
    # the class-sorted join list)
    if len(join_rows):
        order = np.argsort(join_classes, kind="stable")
        sorted_classes = join_classes[order]
        within = (np.arange(len(order), dtype=np.int64)
                  - np.searchsorted(sorted_classes, sorted_classes))
        rows[offsets[sorted_classes] + old_sizes[sorted_classes]
             + within] = join_rows[order]
    # brand-new classes fill the tail of the layout
    cursor = int(offsets[n_old_classes])
    for new_class in new_classes:
        rows[cursor:cursor + len(new_class)] = new_class
        cursor += len(new_class)

    merged = StrippedPartition.from_flat(rows, offsets, n_rows)
    grew = np.concatenate(
        (counts > 0, np.ones(len(new_classes), dtype=bool)))
    return merged, grew


def partition_from_columns(relation: EncodedRelation,
                           attributes: Iterable[int]) -> StrippedPartition:
    """Compute Π*_X from scratch by hashing whole projections.

    Used as the slow-but-obviously-correct reference implementation in
    property tests against :meth:`StrippedPartition.product`.
    Deliberately kept as a Python-level hash loop — it is the oracle
    the vectorized kernels are validated against.
    """
    attributes = list(attributes)
    if not attributes:
        return StrippedPartition.single_class(relation.n_rows)
    groups: dict = {}
    columns = [relation.column(a) for a in attributes]
    for row in range(relation.n_rows):
        key = tuple(int(col[row]) for col in columns)
        groups.setdefault(key, []).append(row)
    classes = [rows for rows in groups.values() if len(rows) >= 2]
    return StrippedPartition(classes, relation.n_rows)
